//! Resilient experiment campaigns: per-point failure isolation, run
//! budgets, and durable checkpoint/resume.
//!
//! The sweep layer in [`crate::sweep`] treats a campaign as all-or-
//! nothing: one failing `(point, replication)` task turns the whole
//! curve into an `Err`, and a killed process loses every completed
//! point. That is the wrong contract for the paper's long §5 campaigns
//! (curves per network × pattern × size). This module keeps the same
//! deterministic task grid and per-task seeding but changes what a
//! failure *means*:
//!
//! * **Per-point isolation.** Every task runs under
//!   [`std::panic::catch_unwind`] in its worker thread; a panic, a
//!   watchdog trip, or any other typed engine error downgrades to a
//!   per-point [`PointOutcome::Failed`] (optionally retried on a
//!   derived seed), while a [`minnet_sim::SimError::BudgetExceeded`]
//!   cut becomes [`PointOutcome::Partial`] carrying the truncated —
//!   but valid — report. The campaign always returns a complete curve
//!   annotated per point; it only `Err`s on configuration or I/O
//!   problems that no retry can fix.
//!
//!   `catch_unwind` needs `AssertUnwindSafe` over the worker's
//!   [`EngineState`]: that is sound here because a state that observed
//!   a panic is discarded and replaced with a fresh allocation (and
//!   every run fully re-dimensions the state on entry anyway).
//!
//! * **Poison-proof collection.** Results travel over an mpsc channel
//!   to the scope-owning thread instead of per-task `Mutex` slots, so
//!   there is no lock to poison: the old
//!   `.expect("sweep worker panicked")` abort path is gone (the legacy
//!   sweep functions now route through this runner too).
//!
//! * **Durable checkpointing.** With [`CampaignPolicy::checkpoint`]
//!   set, every finished task is appended — `write`+`flush`, one JSON
//!   line each — to a versioned JSONL file keyed by a hash of the full
//!   campaign configuration. Resuming loads completed tasks and only
//!   runs the rest; because per-task seeds are independent of both the
//!   schedule and the thread count, and floats are checkpointed as
//!   `f64::to_bits` patterns, a resumed curve is **bitwise identical**
//!   to an uninterrupted one (pinned by the workspace proptests). A
//!   SIGKILL can at worst tear the final line; the loader stops at the
//!   first unparsable line and drops the torn tail before appending.
//!
//! Budget semantics vs the watchdog: the no-progress watchdog (PR 4)
//! catches *wedged* networks — zero flit movement with packets active —
//! while [`minnet_sim::RunBudget`] catches *legitimate but unbounded*
//! work (a run pushed past saturation whose wall time explodes). A
//! watchdog trip is a `Failed` outcome (the run's numbers are
//! meaningless); a budget cut is `Partial` (the numbers are a valid
//! truncated sample).

use crate::experiment::{CompiledExperiment, Experiment};
use crate::lockfile::LockFile;
use crate::sweep::{
    aggregate_degradation, aggregate_replicated, mix, DegradationPoint, ReplicatedPoint,
};
use minnet_sim::{EngineState, LockstepState, SimError, SimReport};
use minnet_topology::FaultPlan;
use std::collections::BTreeMap;
use std::io::Write;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// What one campaign task (a `(point, replication)` cell) produced.
#[derive(Clone, Debug)]
pub enum PointOutcome {
    /// The run completed normally.
    Ok(SimReport),
    /// A [`minnet_sim::RunBudget`] limit cut the run short; the report
    /// is a valid truncated sample (rates normalized over the cycles
    /// actually measured). Not retried — the same budget would cut a
    /// retry identically (cycles) or arbitrarily (wall clock).
    Partial {
        /// Statistics accumulated up to the cut.
        report: SimReport,
        /// Which budget fired, human-readable.
        reason: String,
    },
    /// The run panicked or returned a non-budget engine error, after
    /// exhausting any configured retries. No usable statistics.
    Failed {
        /// The panic message or engine error, human-readable.
        reason: String,
    },
}

impl PointOutcome {
    /// The report, if this outcome carries one (`Ok` or `Partial`).
    pub fn report(&self) -> Option<&SimReport> {
        match self {
            PointOutcome::Ok(r) | PointOutcome::Partial { report: r, .. } => Some(r),
            PointOutcome::Failed { .. } => None,
        }
    }

    /// The report of a fully completed run only.
    pub fn ok_report(&self) -> Option<&SimReport> {
        match self {
            PointOutcome::Ok(r) => Some(r),
            _ => None,
        }
    }

    /// Whether the run completed normally.
    pub fn is_ok(&self) -> bool {
        matches!(self, PointOutcome::Ok(_))
    }

    /// Whether a budget cut the run short.
    pub fn is_partial(&self) -> bool {
        matches!(self, PointOutcome::Partial { .. })
    }

    /// Whether the run produced no usable statistics.
    pub fn is_failed(&self) -> bool {
        matches!(self, PointOutcome::Failed { .. })
    }

    /// The checkpoint tag (`ok` / `partial` / `failed`).
    pub fn tag(&self) -> &'static str {
        match self {
            PointOutcome::Ok(_) => "ok",
            PointOutcome::Partial { .. } => "partial",
            PointOutcome::Failed { .. } => "failed",
        }
    }
}

/// How a campaign treats failures and persistence.
#[derive(Clone, Debug, Default)]
pub struct CampaignPolicy {
    /// Same-point retries after a `Failed` outcome (panic or non-budget
    /// engine error). Attempt `a > 0` reruns the task with seed
    /// `mix(task_seed, 0x5245_7452 + a)` — deterministic, decorrelated
    /// from the original draw. Budget cuts are never retried.
    pub retries: u32,
    /// Append each finished task to this JSONL checkpoint file (and
    /// load completed tasks from it when it already exists).
    pub checkpoint: Option<PathBuf>,
    /// Refuse to start when the checkpoint file does not exist — the
    /// CLI's `--resume` (vs `--checkpoint`, which creates or resumes).
    pub require_existing: bool,
}

impl CampaignPolicy {
    /// No retries, no checkpoint — isolation only.
    pub fn isolate() -> CampaignPolicy {
        CampaignPolicy::default()
    }
}

/// One annotated point of a [`campaign_curve`].
#[derive(Clone, Debug)]
pub struct CampaignPoint {
    /// Nominal offered load (flits/cycle/node).
    pub offered: f64,
    /// What the run produced.
    pub outcome: PointOutcome,
    /// Attempts spent (1 = no retry was needed).
    pub attempts: u32,
}

/// One annotated point of a [`campaign_replicated_curve`]: every
/// replication's outcome, plus the usual across-replication aggregate
/// over the replications that completed normally.
#[derive(Clone, Debug)]
pub struct ReplicatedCampaignPoint {
    /// Nominal offered load (flits/cycle/node).
    pub offered: f64,
    /// Per-replication outcomes, in replication order.
    pub outcomes: Vec<PointOutcome>,
    /// Per-replication attempt counts, in replication order.
    pub attempts: Vec<u32>,
    /// Aggregate over the `Ok` replications — `None` when none
    /// completed. Partial reports are *excluded*: a truncated sample
    /// would bias the across-replication confidence intervals.
    pub ok_stats: Option<ReplicatedPoint>,
}

/// One annotated point of a [`campaign_degradation_curve`].
#[derive(Clone, Debug)]
pub struct DegradationCampaignPoint {
    /// Number of inter-stage links killed for this point.
    pub fault_count: usize,
    /// Per-replication outcomes, in replication order.
    pub outcomes: Vec<PointOutcome>,
    /// Per-replication attempt counts, in replication order.
    pub attempts: Vec<u32>,
    /// Aggregate over the `Ok` replications — `None` when none
    /// completed (see [`ReplicatedCampaignPoint::ok_stats`]).
    pub ok_stats: Option<DegradationPoint>,
}

/// Count `(ok, partial, failed)` over a slice of outcomes.
pub fn outcome_counts<'a>(
    outcomes: impl IntoIterator<Item = &'a PointOutcome>,
) -> (usize, usize, usize) {
    let mut counts = (0, 0, 0);
    for o in outcomes {
        match o {
            PointOutcome::Ok(_) => counts.0 += 1,
            PointOutcome::Partial { .. } => counts.1 += 1,
            PointOutcome::Failed { .. } => counts.2 += 1,
        }
    }
    counts
}

/// The seed for retry `attempt` of a task originally seeded `seed`:
/// attempt 0 is the original draw; later attempts decorrelate via
/// SplitMix64 so a seed-dependent failure is not simply replayed.
pub(crate) fn retry_seed(seed: u64, attempt: u32) -> u64 {
    if attempt == 0 {
        seed
    } else {
        mix(seed, 0x5245_7452 + u64::from(attempt))
    }
}

/// Extract a human-readable message from a caught panic payload.
fn panic_reason(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panic: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panic: {s}")
    } else {
        "panic: (non-string payload)".to_string()
    }
}

/// The resilient task runner every campaign (and the legacy sweep
/// functions) sits on. `results` arrives pre-filled with checkpointed
/// outcomes (`Some`) and holes to run (`None`); workers claim holes
/// from a shared cursor, run `run(task, attempt, state)` under
/// `catch_unwind`, and send `(task, outcome, attempts)` over a channel
/// to the scope-owning thread, which appends to the checkpoint via
/// `on_complete`. Per-task seeding keeps the *values* independent of
/// scheduling; only `Err`s on checkpoint I/O failure.
pub(crate) fn run_outcomes(
    threads: usize,
    retries: u32,
    mut results: Vec<Option<(PointOutcome, u32)>>,
    mut on_complete: impl FnMut(usize, u32, &PointOutcome) -> Result<(), String>,
    run: impl Fn(usize, u32, &mut EngineState) -> Result<SimReport, SimError> + Sync,
) -> Result<Vec<(PointOutcome, u32)>, String> {
    let pending: Vec<usize> = (0..results.len())
        .filter(|&i| results[i].is_none())
        .collect();
    if !pending.is_empty() {
        let threads = threads.max(1).min(pending.len());
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, PointOutcome, u32)>();
        let mut io_err: Option<String> = None;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let cursor = &cursor;
                let pending = &pending;
                let run = &run;
                scope.spawn(move || {
                    let mut st = EngineState::new();
                    loop {
                        let slot = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some(&i) = pending.get(slot) else { break };
                        let mut attempt = 0u32;
                        let outcome = loop {
                            let res =
                                catch_unwind(AssertUnwindSafe(|| run(i, attempt, &mut st)));
                            let reason = match res {
                                Ok(Ok(report)) => break PointOutcome::Ok(report),
                                Ok(Err(SimError::BudgetExceeded(partial))) => {
                                    let reason = partial.to_string();
                                    break PointOutcome::Partial {
                                        report: partial.report,
                                        reason,
                                    };
                                }
                                Ok(Err(e)) => e.to_string(),
                                Err(payload) => {
                                    // The state witnessed a panic mid-run;
                                    // never reuse it.
                                    st = EngineState::new();
                                    panic_reason(payload)
                                }
                            };
                            if attempt < retries {
                                attempt += 1;
                                continue;
                            }
                            break PointOutcome::Failed { reason };
                        };
                        if tx.send((i, outcome, attempt + 1)).is_err() {
                            break;
                        }
                    }
                });
            }
            drop(tx);
            // Collect on the scope-owning thread while workers run: no
            // shared slots, nothing to poison. On a checkpoint write
            // error keep draining (workers must finish) but remember
            // the first failure.
            for (i, outcome, attempts) in rx {
                if io_err.is_none() {
                    if let Err(e) = on_complete(i, attempts, &outcome) {
                        io_err = Some(e);
                    }
                }
                results[i] = Some((outcome, attempts));
            }
        });
        if let Some(e) = io_err {
            return Err(format!("checkpoint write failed: {e}"));
        }
    }
    Ok(results
        .into_iter()
        .map(|slot| slot.expect("runner fills every task slot"))
        .collect())
}

/// Re-run one `(point, replication)` task through the scalar path with
/// [`run_outcomes`]-identical retry semantics. `spent_reason` carries
/// the failure of an attempt already spent by the lockstep fleet (the
/// fleet is attempt 0); `None` starts from attempt 0 — used after a
/// fleet panic, where rerunning an innocent lane's attempt 0 scalar
/// reproduces the fleet's bit-identical report.
fn scalar_attempts(
    compiled: &CompiledExperiment,
    load: f64,
    seed: u64,
    spent_reason: Option<String>,
    retries: u32,
    st: &mut EngineState,
) -> (PointOutcome, u32) {
    let mut attempt = 0u32;
    if let Some(reason) = spent_reason {
        // The fleet already spent attempt 0 on this lane's grid seed;
        // its failure reason stands if there are no retries to spend.
        if retries == 0 {
            return (PointOutcome::Failed { reason }, 1);
        }
        attempt = 1;
    }
    loop {
        let res = catch_unwind(AssertUnwindSafe(|| {
            compiled.run_typed(load, retry_seed(seed, attempt), st)
        }));
        let reason = match res {
            Ok(Ok(report)) => return (PointOutcome::Ok(report), attempt + 1),
            Ok(Err(SimError::BudgetExceeded(partial))) => {
                let reason = partial.to_string();
                return (
                    PointOutcome::Partial {
                        report: partial.report,
                        reason,
                    },
                    attempt + 1,
                );
            }
            Ok(Err(e)) => e.to_string(),
            Err(payload) => {
                *st = EngineState::new();
                panic_reason(payload)
            }
        };
        if attempt < retries {
            attempt += 1;
            continue;
        }
        return (PointOutcome::Failed { reason }, attempt + 1);
    }
}

/// The lockstep variant of [`run_outcomes`] for the replicated-curve
/// task grid: the unit of parallelism is a *load point*, whose missing
/// replications run as one lockstep fleet on the worker's own
/// [`LockstepState`] (see `CompiledNet::run_poisson_lockstep`). Task
/// `(i, r)` keeps the grid seed `mix(base, i·R + r + 1)`, so every `Ok`
/// lane is bit-identical to the scalar grid's — including resumed
/// campaigns, where a point's fleet covers only its checkpoint holes
/// (lanes are independent, so a partial fleet changes nothing).
///
/// Fall-backs to the scalar path, per lane: a lane that fails in the
/// fleet retries scalar under [`retry_seed`]; a fleet panic reruns all
/// of the point's missing lanes scalar from attempt 0 (innocent lanes
/// reproduce their fleet report bit-identically, the guilty lane
/// deterministically re-fails and spends its retries). Budget-armed
/// configurations never reach this runner — the campaign dispatches to
/// [`run_outcomes`] instead, because per-run budget accounting cannot
/// be reproduced under a shared fleet clock.
pub(crate) fn run_replicated_outcomes_lockstep(
    compiled: &CompiledExperiment,
    loads: &[f64],
    replications: usize,
    threads: usize,
    retries: u32,
    mut results: Vec<Option<(PointOutcome, u32)>>,
    mut on_complete: impl FnMut(usize, u32, &PointOutcome) -> Result<(), String>,
) -> Result<Vec<(PointOutcome, u32)>, String> {
    debug_assert_eq!(results.len(), loads.len() * replications);
    let base = compiled.base_seed();
    // Pending points and, per point, the replication lanes still to run
    // (checkpoint holes).
    let pending: Vec<(usize, Vec<usize>)> = (0..loads.len())
        .filter_map(|i| {
            let lanes: Vec<usize> = (0..replications)
                .filter(|r| results[i * replications + r].is_none())
                .collect();
            (!lanes.is_empty()).then_some((i, lanes))
        })
        .collect();
    if !pending.is_empty() {
        let requested = threads.max(1);
        let threads = requested.min(pending.len());
        // Worker-pool parallelism goes to points first; whatever is
        // left over (a single-point campaign on a multi-thread budget)
        // goes to each point's fleet as lane-block threads. Lane
        // chunking is outside the determinism boundary, so this only
        // moves wall time; total concurrency stays ≤ the request.
        let fleet_threads = (requested / pending.len().max(1)).max(1);
        let cursor = AtomicUsize::new(0);
        let (tx, rx) = mpsc::channel::<(usize, PointOutcome, u32)>();
        let mut io_err: Option<String> = None;
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let tx = tx.clone();
                let cursor = &cursor;
                let pending = &pending;
                scope.spawn(move || {
                    let mut ls = LockstepState::new();
                    let mut st = EngineState::new();
                    'points: loop {
                        let slot = cursor.fetch_add(1, Ordering::Relaxed);
                        let Some((i, lanes)) = pending.get(slot) else { break };
                        let i = *i;
                        let seeds: Vec<u64> = lanes
                            .iter()
                            .map(|&r| mix(base, (i * replications + r) as u64 + 1))
                            .collect();
                        let workload = match compiled.template().workload_at(loads[i]) {
                            Ok(w) => w,
                            Err(e) => {
                                // A per-load configuration error fails every
                                // lane of the point identically, after the
                                // same (futile) retries the scalar grid
                                // would spend.
                                let reason = SimError::Config(e).to_string();
                                for &r in lanes {
                                    let t = i * replications + r;
                                    let outcome = PointOutcome::Failed {
                                        reason: reason.clone(),
                                    };
                                    if tx.send((t, outcome, retries + 1)).is_err() {
                                        break 'points;
                                    }
                                }
                                continue;
                            }
                        };
                        let fleet = catch_unwind(AssertUnwindSafe(|| {
                            compiled.network().run_poisson_lockstep(
                                &workload,
                                &seeds,
                                fleet_threads,
                                &mut ls,
                            )
                        }));
                        let mut per_lane: Vec<Option<Result<SimReport, SimError>>> = match fleet
                        {
                            Ok(v) => v.into_iter().map(Some).collect(),
                            Err(_payload) => {
                                // A lane panicked mid-fleet; the pool may
                                // hold half-mutated states. Discard it and
                                // rerun every missing lane scalar.
                                ls = LockstepState::new();
                                lanes.iter().map(|_| None).collect()
                            }
                        };
                        for (k, &r) in lanes.iter().enumerate() {
                            let t = i * replications + r;
                            let (outcome, attempts) = match per_lane[k].take() {
                                Some(Ok(report)) => (PointOutcome::Ok(report), 1),
                                Some(Err(SimError::BudgetExceeded(partial))) => {
                                    let reason = partial.to_string();
                                    (
                                        PointOutcome::Partial {
                                            report: partial.report,
                                            reason,
                                        },
                                        1,
                                    )
                                }
                                Some(Err(e)) => scalar_attempts(
                                    compiled,
                                    loads[i],
                                    seeds[k],
                                    Some(e.to_string()),
                                    retries,
                                    &mut st,
                                ),
                                None => scalar_attempts(
                                    compiled,
                                    loads[i],
                                    seeds[k],
                                    None,
                                    retries,
                                    &mut st,
                                ),
                            };
                            if tx.send((t, outcome, attempts)).is_err() {
                                break 'points;
                            }
                        }
                    }
                });
            }
            drop(tx);
            for (t, outcome, attempts) in rx {
                if io_err.is_none() {
                    if let Err(e) = on_complete(t, attempts, &outcome) {
                        io_err = Some(e);
                    }
                }
                results[t] = Some((outcome, attempts));
            }
        });
        if let Some(e) = io_err {
            return Err(format!("checkpoint write failed: {e}"));
        }
    }
    Ok(results
        .into_iter()
        .map(|slot| slot.expect("runner fills every task slot"))
        .collect())
}

// ---- campaigns -------------------------------------------------------

/// [`crate::latency_throughput_curve`] with campaign semantics: one
/// task per load, per-point outcomes, optional retries and
/// checkpointing. Task seeds are exactly the plain sweep's
/// (`mix(base, i + 1)`), so every `Ok` report is bit-identical to the
/// corresponding [`crate::SweepPoint`].
///
/// # Errors
///
/// Configuration problems (invalid experiment) and checkpoint I/O or
/// validation failures only — runtime failures become per-point
/// outcomes.
pub fn campaign_curve(
    exp: &Experiment,
    loads: &[f64],
    threads: usize,
    policy: &CampaignPolicy,
) -> Result<Vec<CampaignPoint>, String> {
    if loads.is_empty() {
        return Ok(Vec::new());
    }
    let compiled = exp.compile()?;
    let base = compiled.base_seed();
    let hash = config_hash("curve", exp, &format!("{loads:?}"), policy.retries);
    let mut ckpt = Checkpoint::open(policy, "curve", hash, loads.len())?;
    let results = run_outcomes(
        threads,
        policy.retries,
        ckpt.preloaded(loads.len()),
        |i, attempts, outcome| ckpt.append(i, attempts, outcome),
        |i, attempt, st| {
            compiled.run_typed(loads[i], retry_seed(mix(base, i as u64 + 1), attempt), st)
        },
    )?;
    Ok(loads
        .iter()
        .zip(results)
        .map(|(&offered, (outcome, attempts))| CampaignPoint {
            offered,
            outcome,
            attempts,
        })
        .collect())
}

/// [`crate::replicated_curve`] with campaign semantics over the whole
/// `(point, replication)` grid. Task `(i, r)` keeps the plain sweep's
/// seed `mix(base, i·R + r + 1)`, so `Ok` replications are
/// bit-identical to the fragile path's.
///
/// # Errors
///
/// As [`campaign_curve`], plus a zero replication count.
pub fn campaign_replicated_curve(
    exp: &Experiment,
    loads: &[f64],
    replications: usize,
    threads: usize,
    policy: &CampaignPolicy,
) -> Result<Vec<ReplicatedCampaignPoint>, String> {
    if replications == 0 {
        return Err("replicated campaign needs at least one replication".into());
    }
    if loads.is_empty() {
        return Ok(Vec::new());
    }
    let compiled = exp.compile()?;
    let base = compiled.base_seed();
    let total = loads.len() * replications;
    let hash = config_hash(
        "replicated_curve",
        exp,
        &format!("{loads:?}/R{replications}"),
        policy.retries,
    );
    let mut ckpt = Checkpoint::open(policy, "replicated_curve", hash, total)?;
    // R > 1 replications of a budget-free experiment run as lockstep
    // fleets (one per load point); budget-armed configurations keep the
    // per-task scalar grid — see `run_replicated_outcomes_lockstep` for
    // the fall-back ladder. Both paths use the same task seeds, so the
    // choice never changes a single bit of any `Ok` report.
    let results = if replications > 1 && compiled.network().lockstep_eligible() {
        let preloaded = ckpt.preloaded(total);
        run_replicated_outcomes_lockstep(
            &compiled,
            loads,
            replications,
            threads,
            policy.retries,
            preloaded,
            |i, attempts, outcome| ckpt.append(i, attempts, outcome),
        )?
    } else {
        run_outcomes(
            threads,
            policy.retries,
            ckpt.preloaded(total),
            |i, attempts, outcome| ckpt.append(i, attempts, outcome),
            |t, attempt, st| {
                let i = t / replications;
                compiled.run_typed(loads[i], retry_seed(mix(base, t as u64 + 1), attempt), st)
            },
        )?
    };

    let mut results = results.into_iter();
    let mut out = Vec::with_capacity(loads.len());
    for &offered in loads {
        let chunk: Vec<(PointOutcome, u32)> = results.by_ref().take(replications).collect();
        let attempts = chunk.iter().map(|(_, a)| *a).collect();
        let outcomes: Vec<PointOutcome> = chunk.into_iter().map(|(o, _)| o).collect();
        let ok: Vec<SimReport> = outcomes.iter().filter_map(|o| o.ok_report().cloned()).collect();
        let ok_stats = (!ok.is_empty()).then(|| aggregate_replicated(offered, ok));
        out.push(ReplicatedCampaignPoint {
            offered,
            outcomes,
            attempts,
            ok_stats,
        });
    }
    Ok(out)
}

/// [`crate::degradation_curve`] with campaign semantics: per-
/// `(fault count, replication)` outcomes, optional retries and
/// checkpointing, same task seeds as the fragile path.
///
/// # Errors
///
/// As [`campaign_replicated_curve`], plus fault-plan construction
/// failures (a fault set larger than the link pool, or one whose masked
/// dependency graph would deadlock) — those are configuration errors
/// shared by every replication, not per-point incidents.
pub fn campaign_degradation_curve(
    exp: &Experiment,
    offered_load: f64,
    fault_counts: &[usize],
    replications: usize,
    threads: usize,
    policy: &CampaignPolicy,
) -> Result<Vec<DegradationCampaignPoint>, String> {
    if replications == 0 {
        return Err("degradation campaign needs at least one replication".into());
    }
    if fault_counts.is_empty() {
        return Ok(Vec::new());
    }
    let compiled = exp.compile()?;
    let base = compiled.base_seed();
    let workload = compiled.template().workload_at(offered_load)?;
    let faulted: Vec<minnet_sim::CompiledFaults> = fault_counts
        .iter()
        .map(|&count| {
            let plan = FaultPlan::random_inter_stage_links(
                compiled.graph(),
                count,
                mix(base, 0xFA_0017 + count as u64),
            )?;
            compiled.network().compile_faults(&plan).map_err(String::from)
        })
        .collect::<Result<_, String>>()?;

    let total = fault_counts.len() * replications;
    let hash = config_hash(
        "degradation_curve",
        exp,
        &format!("load{:016x}/{fault_counts:?}/R{replications}", offered_load.to_bits()),
        policy.retries,
    );
    let mut ckpt = Checkpoint::open(policy, "degradation_curve", hash, total)?;
    let results = run_outcomes(
        threads,
        policy.retries,
        ckpt.preloaded(total),
        |i, attempts, outcome| ckpt.append(i, attempts, outcome),
        |t, attempt, st| {
            let i = t / replications;
            compiled.network().run_poisson_faulted(
                &workload,
                Some(&faulted[i]),
                retry_seed(mix(base, t as u64 + 1), attempt),
                st,
            )
        },
    )?;

    let mut results = results.into_iter();
    let mut out = Vec::with_capacity(fault_counts.len());
    for &fault_count in fault_counts {
        let chunk: Vec<(PointOutcome, u32)> = results.by_ref().take(replications).collect();
        let attempts = chunk.iter().map(|(_, a)| *a).collect();
        let outcomes: Vec<PointOutcome> = chunk.into_iter().map(|(o, _)| o).collect();
        let ok: Vec<SimReport> = outcomes.iter().filter_map(|o| o.ok_report().cloned()).collect();
        let ok_stats = (!ok.is_empty()).then(|| aggregate_degradation(fault_count, ok));
        out.push(DegradationCampaignPoint {
            fault_count,
            outcomes,
            attempts,
            ok_stats,
        });
    }
    Ok(out)
}

/// The largest sustainable accepted throughput on a campaign curve —
/// [`crate::saturation_load`] with outcome awareness: only fully
/// completed (`Ok`) points qualify. A `Partial` point's report is a
/// valid truncated sample but its sustainability verdict is not a
/// completed run's — and a budget cut is itself evidence the point sits
/// past the knee — so budget-truncated points can never be crowned the
/// sustainable maximum.
pub fn campaign_saturation_load(points: &[CampaignPoint]) -> Option<&CampaignPoint> {
    points
        .iter()
        .filter(|p| {
            p.outcome
                .ok_report()
                .is_some_and(|r| r.sustainable && r.steady)
        })
        .max_by(|a, b| {
            let t = |p: &CampaignPoint| {
                p.outcome
                    .ok_report()
                    .map(|r| r.accepted_flits_per_node_cycle)
                    .unwrap_or(f64::NEG_INFINITY)
            };
            t(a).total_cmp(&t(b))
        })
}

// ---- configuration hash ----------------------------------------------

/// FNV-1a 64 over the campaign kind, the full `Experiment` (its `Debug`
/// form covers geometry, network, workload family, and the complete
/// `EngineConfig` including seed and budget), the point grid, and the
/// retry policy. Threads are deliberately excluded: values are
/// thread-count invariant.
pub(crate) fn config_hash(kind: &str, exp: &Experiment, params: &str, retries: u32) -> u64 {
    let s = format!("{kind}|{exp:?}|{params}|retries={retries}");
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---- checkpoint file -------------------------------------------------

/// Current checkpoint format version (the header's `"v"`).
const CKPT_VERSION: u64 = 1;

/// An open campaign checkpoint: previously completed tasks plus an
/// append handle. `file == None` means checkpointing is off and every
/// method is a no-op. A live checkpoint holds the advisory
/// [`LockFile`] guarding its path — the JSONL appender assumes a
/// single writer, and the lock turns a misconfigured second process
/// into a fast, explicit error instead of interleaved lines.
pub(crate) struct Checkpoint {
    file: Option<std::fs::File>,
    loaded: BTreeMap<usize, (PointOutcome, u32)>,
    _lock: Option<LockFile>,
}

impl Checkpoint {
    /// Open (or create) the policy's checkpoint for a campaign of
    /// `total` tasks, validating version, kind, and config hash.
    pub(crate) fn open(
        policy: &CampaignPolicy,
        kind: &str,
        hash: u64,
        total: usize,
    ) -> Result<Checkpoint, String> {
        let Some(path) = &policy.checkpoint else {
            return Ok(Checkpoint {
                file: None,
                loaded: BTreeMap::new(),
                _lock: None,
            });
        };
        let lock = LockFile::acquire(path)?;
        let hash_hex = format!("{hash:016x}");
        let shown = path.display();
        if !path.exists() {
            if policy.require_existing {
                return Err(format!(
                    "resume: checkpoint {shown} does not exist \
                     (use --checkpoint to start a new campaign)"
                ));
            }
            let mut f = std::fs::OpenOptions::new()
                .create_new(true)
                .append(true)
                .open(path)
                .map_err(|e| format!("creating checkpoint {shown}: {e}"))?;
            let header = format!(
                "{{\"v\":{CKPT_VERSION},\"kind\":\"{kind}\",\
                 \"config_hash\":\"{hash_hex}\",\"total_tasks\":{total}}}\n"
            );
            f.write_all(header.as_bytes())
                .and_then(|()| f.flush())
                .map_err(|e| format!("writing checkpoint {shown}: {e}"))?;
            return Ok(Checkpoint {
                file: Some(f),
                loaded: BTreeMap::new(),
                _lock: Some(lock),
            });
        }

        let content = std::fs::read_to_string(path)
            .map_err(|e| format!("reading checkpoint {shown}: {e}"))?;
        let mut lines = content.split_inclusive('\n');
        let header = lines
            .next()
            .ok_or_else(|| format!("checkpoint {shown}: empty file"))?;
        if !header.ends_with('\n') {
            return Err(format!("checkpoint {shown}: torn header line"));
        }
        let ht = header.trim();
        match json_u64(ht, "v") {
            Some(CKPT_VERSION) => {}
            Some(v) => {
                return Err(format!(
                    "checkpoint {shown}: unsupported version {v} (this build reads {CKPT_VERSION})"
                ))
            }
            None => return Err(format!("checkpoint {shown}: malformed header")),
        }
        let file_kind = json_str(ht, "kind")
            .ok_or_else(|| format!("checkpoint {shown}: header has no kind"))?;
        if file_kind != kind {
            return Err(format!(
                "checkpoint {shown} holds a {file_kind} campaign; this run is a {kind} campaign"
            ));
        }
        let file_hash = json_str(ht, "config_hash")
            .ok_or_else(|| format!("checkpoint {shown}: header has no config_hash"))?;
        if file_hash != hash_hex {
            return Err(format!(
                "checkpoint {shown}: config hash {file_hash} does not match this campaign \
                 ({hash_hex}) — the experiment, point grid, replication count, or retry \
                 policy changed; refusing to resume"
            ));
        }
        if json_u64(ht, "total_tasks") != Some(total as u64) {
            return Err(format!(
                "checkpoint {shown}: task count differs from this campaign; refusing to resume"
            ));
        }

        let mut loaded = BTreeMap::new();
        let mut good_len = header.len();
        for line in lines {
            // A SIGKILL can tear at most the final line: stop at the
            // first incomplete or unparsable one and drop that tail.
            if !line.ends_with('\n') {
                break;
            }
            let t = line.trim();
            if !t.is_empty() {
                let Some((task, outcome, attempts)) = parse_task_line(t) else {
                    break;
                };
                if task >= total {
                    break;
                }
                loaded.insert(task, (outcome, attempts));
            }
            good_len += line.len();
        }
        if good_len < content.len() {
            let f = std::fs::OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| format!("opening checkpoint {shown}: {e}"))?;
            f.set_len(good_len as u64)
                .map_err(|e| format!("dropping torn tail of checkpoint {shown}: {e}"))?;
        }
        let f = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("opening checkpoint {shown}: {e}"))?;
        Ok(Checkpoint {
            file: Some(f),
            loaded,
            _lock: Some(lock),
        })
    }

    /// The pre-filled result vector [`run_outcomes`] starts from:
    /// checkpointed tasks as `Some`, everything else as holes to run.
    pub(crate) fn preloaded(&mut self, total: usize) -> Vec<Option<(PointOutcome, u32)>> {
        let mut v: Vec<Option<(PointOutcome, u32)>> = (0..total).map(|_| None).collect();
        for (task, entry) in std::mem::take(&mut self.loaded) {
            v[task] = Some(entry);
        }
        v
    }

    /// Append one finished task — one line, written and flushed whole,
    /// so a kill between tasks never tears more than the line in
    /// flight.
    pub(crate) fn append(&mut self, task: usize, attempts: u32, outcome: &PointOutcome) -> Result<(), String> {
        let Some(f) = &mut self.file else {
            return Ok(());
        };
        let line = task_line(task, attempts, outcome)?;
        f.write_all(line.as_bytes())
            .and_then(|()| f.flush())
            .map_err(|e| e.to_string())
    }
}

/// Serialize one finished task as a checkpoint line (newline included).
pub(crate) fn task_line(task: usize, attempts: u32, outcome: &PointOutcome) -> Result<String, String> {
    let tag = outcome.tag();
    Ok(match outcome {
        PointOutcome::Ok(report) => format!(
            "{{\"task\":{task},\"attempts\":{attempts},\"outcome\":\"{tag}\",\"report\":{}}}\n",
            report_to_json(report)?
        ),
        PointOutcome::Partial { report, reason } => format!(
            "{{\"task\":{task},\"attempts\":{attempts},\"outcome\":\"{tag}\",\"report\":{},\
             \"reason\":\"{}\"}}\n",
            report_to_json(report)?,
            esc(reason)
        ),
        PointOutcome::Failed { reason } => format!(
            "{{\"task\":{task},\"attempts\":{attempts},\"outcome\":\"{tag}\",\"reason\":\"{}\"}}\n",
            esc(reason)
        ),
    })
}

/// Parse one checkpoint task line; `None` marks a torn/alien line.
pub(crate) fn parse_task_line(line: &str) -> Option<(usize, PointOutcome, u32)> {
    let task = json_u64(line, "task")? as usize;
    let attempts = json_u64(line, "attempts")? as u32;
    let outcome = match json_str(line, "outcome")?.as_str() {
        "ok" => PointOutcome::Ok(report_from_json(line)?),
        "partial" => PointOutcome::Partial {
            report: report_from_json(line)?,
            reason: json_str(line, "reason")?,
        },
        "failed" => PointOutcome::Failed {
            reason: json_str(line, "reason")?,
        },
        _ => return None,
    };
    Some((task, outcome, attempts))
}

// ---- hand-rolled JSON (this offline workspace has no serde) ----------

/// Serialize a report for the checkpoint. Floats are written as their
/// `f64::to_bits` pattern in a quoted decimal — decimal formatting
/// would round-trip imprecisely and break the bitwise resume contract.
///
/// Refuses reports carrying `deliveries` or `trace` payloads: campaigns
/// run Poisson workloads where both are `None`, and silently dropping
/// them would make a resumed curve differ from an uninterrupted one.
fn report_to_json(r: &SimReport) -> Result<String, String> {
    if r.deliveries.is_some() || r.trace.is_some() {
        return Err(
            "checkpointing reports with deliveries or trace payloads is not supported"
                .to_string(),
        );
    }
    let mut s = format!(
        "{{\"cycles\":{},\"measured_cycles\":{},\"generated_packets\":{},\
         \"delivered_packets\":{},\"offered_bits\":\"{}\",\"accepted_bits\":\"{}\",\
         \"mean_latency_bits\":\"{}\",\"latency_ci95_bits\":\"{}\",\"p50\":{},\"p95\":{},\
         \"p99\":{},\"max_latency\":{},\"mean_queue_bits\":\"{}\",\"max_queue\":{},\
         \"sustainable\":{},\"steady\":{},\"in_flight_at_end\":{},\"aborted_packets\":{},\
         \"undeliverable_packets\":{}",
        r.cycles,
        r.measured_cycles,
        r.generated_packets,
        r.delivered_packets,
        r.offered_flits_per_node_cycle.to_bits(),
        r.accepted_flits_per_node_cycle.to_bits(),
        r.mean_latency_cycles.to_bits(),
        r.latency_ci95_cycles.to_bits(),
        r.p50_latency_cycles,
        r.p95_latency_cycles,
        r.p99_latency_cycles,
        r.max_latency_cycles,
        r.mean_queue.to_bits(),
        r.max_queue,
        r.sustainable,
        r.steady,
        r.in_flight_at_end,
        r.aborted_packets,
        r.undeliverable_packets,
    );
    if let Some(util) = &r.channel_utilization {
        s.push_str(",\"util_bits\":[");
        for (i, u) in util.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push('"');
            s.push_str(&u.to_bits().to_string());
            s.push('"');
        }
        s.push(']');
    }
    s.push('}');
    Ok(s)
}

/// Rebuild a report from a checkpoint line (flat key scan — every key
/// is unique within a line). `None` marks a torn/malformed line.
fn report_from_json(line: &str) -> Option<SimReport> {
    Some(SimReport {
        cycles: json_u64(line, "cycles")?,
        measured_cycles: json_u64(line, "measured_cycles")?,
        generated_packets: json_u64(line, "generated_packets")?,
        delivered_packets: json_u64(line, "delivered_packets")?,
        offered_flits_per_node_cycle: json_bits(line, "offered_bits")?,
        accepted_flits_per_node_cycle: json_bits(line, "accepted_bits")?,
        mean_latency_cycles: json_bits(line, "mean_latency_bits")?,
        latency_ci95_cycles: json_bits(line, "latency_ci95_bits")?,
        p50_latency_cycles: json_u64(line, "p50")?,
        p95_latency_cycles: json_u64(line, "p95")?,
        p99_latency_cycles: json_u64(line, "p99")?,
        max_latency_cycles: json_u64(line, "max_latency")?,
        mean_queue: json_bits(line, "mean_queue_bits")?,
        max_queue: json_u64(line, "max_queue")? as usize,
        sustainable: json_bool(line, "sustainable")?,
        steady: json_bool(line, "steady")?,
        in_flight_at_end: json_u64(line, "in_flight_at_end")?,
        aborted_packets: json_u64(line, "aborted_packets")?,
        undeliverable_packets: json_u64(line, "undeliverable_packets")?,
        channel_utilization: json_bits_array(line, "util_bits"),
        deliveries: None,
        trace: None,
    })
}

/// Escape a string for a JSON line.
pub(crate) fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The position just past `"key":` in `line`, skipping a space if any.
fn after_key(line: &str, key: &str) -> Option<usize> {
    let pat = format!("\"{key}\":");
    let mut at = line.find(&pat)? + pat.len();
    if line[at..].starts_with(' ') {
        at += 1;
    }
    Some(at)
}

/// Extract the unsigned integer value of `"key"`.
pub(crate) fn json_u64(line: &str, key: &str) -> Option<u64> {
    let rest = &line[after_key(line, key)?..];
    let end = rest
        .find(|c: char| !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extract the boolean value of `"key"`.
pub(crate) fn json_bool(line: &str, key: &str) -> Option<bool> {
    let rest = &line[after_key(line, key)?..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Extract and unescape the string value of `"key"`.
pub(crate) fn json_str(line: &str, key: &str) -> Option<String> {
    let rest = &line[after_key(line, key)?..];
    let rest = rest.strip_prefix('"')?;
    let mut out = String::new();
    let mut chars = rest.chars();
    loop {
        match chars.next()? {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                '/' => out.push('/'),
                'n' => out.push('\n'),
                'r' => out.push('\r'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            c => out.push(c),
        }
    }
}

/// Extract a float checkpointed as a quoted `f64::to_bits` decimal.
pub(crate) fn json_bits(line: &str, key: &str) -> Option<f64> {
    let rest = &line[after_key(line, key)?..];
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    rest[..end].parse::<u64>().ok().map(f64::from_bits)
}

/// Extract an optional array of bit-pattern floats (`None` when the
/// key is absent — the report had no `channel_utilization`).
pub(crate) fn json_bits_array(line: &str, key: &str) -> Option<Vec<f64>> {
    let rest = &line[after_key(line, key)?..];
    let rest = rest.strip_prefix('[')?;
    let end = rest.find(']')?;
    let body = &rest[..end];
    if body.trim().is_empty() {
        return Some(Vec::new());
    }
    body.split(',')
        .map(|item| {
            item.trim()
                .trim_matches('"')
                .parse::<u64>()
                .ok()
                .map(f64::from_bits)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NetworkSpec;
    use minnet_sim::RunBudget;
    use minnet_traffic::MessageSizeDist;
    use std::sync::atomic::AtomicU64;

    fn quick() -> Experiment {
        let mut e = Experiment::paper_default(NetworkSpec::tmin());
        e.sizes = MessageSizeDist::Fixed(32);
        e.sim.warmup = 500;
        e.sim.measure = 4_000;
        e
    }

    /// A unique temp path per call (tests run in parallel).
    fn temp_ckpt(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "minnet_ckpt_{}_{tag}_{n}.jsonl",
            std::process::id()
        ))
    }

    struct Cleanup(PathBuf);
    impl Drop for Cleanup {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    #[test]
    fn panicking_point_is_failed_not_abort() {
        // The PR-4-era sweep aborted the whole campaign on one panicking
        // worker (poisoned slot mutex). Now: the panic is contained, the
        // point reports Failed with the panic message, every other point
        // completes, and the retry budget is spent.
        let exp = quick();
        let compiled = exp.compile().unwrap();
        let results = run_outcomes(
            3,
            1,
            (0..3).map(|_| None).collect(),
            |_, _, _| Ok(()),
            |i, attempt, st| {
                if i == 1 {
                    panic!("injected failure at point {i} attempt {attempt}");
                }
                compiled.run_typed(0.2, mix(7, i as u64 + 1), st)
            },
        )
        .unwrap();
        assert!(results[0].0.is_ok());
        assert!(results[2].0.is_ok());
        let (outcome, attempts) = &results[1];
        let PointOutcome::Failed { reason } = outcome else {
            panic!("expected Failed, got {}", outcome.tag());
        };
        assert!(reason.contains("panic: injected failure"), "{reason}");
        assert_eq!(*attempts, 2, "one retry was configured and spent");
    }

    #[test]
    fn retry_recovers_a_transient_failure() {
        let exp = quick();
        let compiled = exp.compile().unwrap();
        let results = run_outcomes(
            1,
            2,
            (0..1).map(|_| None).collect(),
            |_, _, _| Ok(()),
            |i, attempt, st| {
                if attempt == 0 {
                    panic!("flaky first attempt");
                }
                compiled.run_typed(0.2, retry_seed(mix(7, i as u64 + 1), attempt), st)
            },
        )
        .unwrap();
        assert!(results[0].0.is_ok());
        assert_eq!(results[0].1, 2);
    }

    #[test]
    fn acceptance_scenario_panic_and_budget_in_one_campaign() {
        // The ISSUE's acceptance criterion: a campaign with an injected
        // panicking point and an over-budget point completes and reports
        // both outcomes per-point.
        let exp = quick();
        let compiled = exp.compile().unwrap();
        let mut budgeted = quick();
        budgeted.sim.budget = RunBudget {
            max_cycles: 1_500,
            max_wall_ms: 0,
        };
        let budgeted = budgeted.compile().unwrap();
        let results = run_outcomes(
            2,
            0,
            (0..4).map(|_| None).collect(),
            |_, _, _| Ok(()),
            |i, _attempt, st| match i {
                1 => panic!("injected"),
                2 => budgeted.run_typed(0.2, 99, st),
                _ => compiled.run_typed(0.2, mix(7, i as u64 + 1), st),
            },
        )
        .unwrap();
        let outcomes: Vec<&PointOutcome> = results.iter().map(|(o, _)| o).collect();
        assert!(outcomes[0].is_ok() && outcomes[3].is_ok());
        assert!(outcomes[1].is_failed());
        assert!(outcomes[2].is_partial());
        let PointOutcome::Partial { report, reason } = outcomes[2] else {
            unreachable!()
        };
        assert_eq!(report.cycles, 1_500);
        assert!(reason.contains("budget"), "{reason}");
        assert_eq!(outcome_counts(outcomes), (2, 1, 1));
    }

    #[test]
    fn budget_cut_is_not_retried() {
        let mut exp = quick();
        exp.sim.budget = RunBudget {
            max_cycles: 1_200,
            max_wall_ms: 0,
        };
        let policy = CampaignPolicy {
            retries: 3,
            ..CampaignPolicy::default()
        };
        let pts = campaign_curve(&exp, &[0.2], 1, &policy).unwrap();
        assert!(pts[0].outcome.is_partial());
        assert_eq!(pts[0].attempts, 1, "budget cuts must not burn retries");
    }

    #[test]
    fn campaign_curve_matches_plain_sweep_bitwise() {
        let exp = quick();
        let loads = [0.15, 0.45];
        let plain = crate::sweep::latency_throughput_curve(&exp, &loads, 2).unwrap();
        let campaign = campaign_curve(&exp, &loads, 2, &CampaignPolicy::isolate()).unwrap();
        for (p, c) in plain.iter().zip(&campaign) {
            assert!(p.report.bitwise_eq(c.outcome.ok_report().unwrap()));
            assert_eq!(c.attempts, 1);
        }
    }

    #[test]
    fn report_round_trips_bitwise_through_json() {
        let mut exp = quick();
        exp.sim.collect_channel_util = true;
        let with_util = exp.run(0.3).unwrap();
        exp.sim.collect_channel_util = false;
        let without = exp.run(0.3).unwrap();
        for r in [with_util, without] {
            let line = format!("{{\"report\":{}}}", report_to_json(&r).unwrap());
            let back = report_from_json(&line).unwrap();
            assert!(r.bitwise_eq(&back), "JSON round trip changed the report");
        }
    }

    #[test]
    fn reason_strings_round_trip_through_escaping() {
        let nasty = "quote \" backslash \\ newline \n tab \t ctrl \u{1} end";
        let outcome = PointOutcome::Failed {
            reason: nasty.to_string(),
        };
        let line = task_line(3, 2, &outcome).unwrap();
        let (task, parsed, attempts) = parse_task_line(line.trim()).unwrap();
        assert_eq!(task, 3);
        assert_eq!(attempts, 2);
        let PointOutcome::Failed { reason } = parsed else {
            panic!("wrong outcome kind");
        };
        assert_eq!(reason, nasty);
    }

    #[test]
    fn checkpoint_resume_skips_completed_tasks_and_is_bitwise_identical() {
        let exp = quick();
        let loads = [0.1, 0.3, 0.5];
        let path = temp_ckpt("resume");
        let _cleanup = Cleanup(path.clone());
        let reference = campaign_curve(&exp, &loads, 2, &CampaignPolicy::isolate()).unwrap();

        let policy = CampaignPolicy {
            checkpoint: Some(path.clone()),
            ..CampaignPolicy::default()
        };
        let first = campaign_curve(&exp, &loads, 2, &policy).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        assert_eq!(full.lines().count(), 1 + loads.len());

        // Truncate to header + one completed task: a simulated kill.
        let keep: String = full.split_inclusive('\n').take(2).collect();
        std::fs::write(&path, keep).unwrap();
        let resume_policy = CampaignPolicy {
            checkpoint: Some(path.clone()),
            require_existing: true,
            ..CampaignPolicy::default()
        };
        let resumed = campaign_curve(&exp, &loads, 2, &resume_policy).unwrap();
        for ((a, b), c) in reference.iter().zip(&first).zip(&resumed) {
            let r = a.outcome.ok_report().unwrap();
            assert!(r.bitwise_eq(b.outcome.ok_report().unwrap()));
            assert!(r.bitwise_eq(c.outcome.ok_report().unwrap()));
        }
        // The resumed run refilled the file to completeness.
        let refilled = std::fs::read_to_string(&path).unwrap();
        assert_eq!(refilled.lines().count(), 1 + loads.len());
    }

    #[test]
    fn torn_tail_line_is_dropped_and_rerun() {
        let exp = quick();
        let loads = [0.1, 0.3];
        let path = temp_ckpt("torn");
        let _cleanup = Cleanup(path.clone());
        let policy = CampaignPolicy {
            checkpoint: Some(path.clone()),
            ..CampaignPolicy::default()
        };
        let reference = campaign_curve(&exp, &loads, 1, &policy).unwrap();
        let full = std::fs::read_to_string(&path).unwrap();
        // Keep the header + first task, then a torn half-line (no \n).
        let mut torn: String = full.split_inclusive('\n').take(2).collect();
        torn.push_str("{\"task\":1,\"attempts\":1,\"outco");
        std::fs::write(&path, torn).unwrap();
        let resumed = campaign_curve(&exp, &loads, 1, &policy).unwrap();
        for (a, b) in reference.iter().zip(&resumed) {
            assert!(a
                .outcome
                .ok_report()
                .unwrap()
                .bitwise_eq(b.outcome.ok_report().unwrap()));
        }
    }

    #[test]
    fn mismatched_config_hash_is_refused() {
        let exp = quick();
        let loads = [0.1, 0.3];
        let path = temp_ckpt("hash");
        let _cleanup = Cleanup(path.clone());
        let policy = CampaignPolicy {
            checkpoint: Some(path.clone()),
            ..CampaignPolicy::default()
        };
        campaign_curve(&exp, &loads, 1, &policy).unwrap();

        let mut other = quick();
        other.sim.seed ^= 1;
        let err = campaign_curve(&other, &loads, 1, &policy).unwrap_err();
        assert!(err.contains("config hash"), "unhelpful refusal: {err}");
        assert!(err.contains("refusing to resume"), "{err}");

        // A different load grid is likewise refused.
        let err = campaign_curve(&exp, &[0.1, 0.35], 1, &policy).unwrap_err();
        assert!(err.contains("config hash"), "{err}");
    }

    #[test]
    fn concurrent_checkpoint_writer_is_refused() {
        // Regression: the JSONL appender assumes a single process. A
        // second open of a live checkpoint must fail fast on the
        // advisory lock, not interleave writes; releasing the first
        // owner unblocks the second.
        let path = temp_ckpt("lock");
        let _cleanup = Cleanup(path.clone());
        let policy = CampaignPolicy {
            checkpoint: Some(path.clone()),
            ..CampaignPolicy::default()
        };
        let first = Checkpoint::open(&policy, "curve", 7, 2).unwrap();
        let Err(err) = Checkpoint::open(&policy, "curve", 7, 2) else {
            panic!("second writer must be refused");
        };
        assert!(err.contains("locked by live process"), "{err}");
        drop(first);
        let again = Checkpoint::open(&policy, "curve", 7, 2).unwrap();
        drop(again);
        assert!(
            !crate::lockfile::LockFile::path_for(&path).exists(),
            "lock must be released on drop"
        );
    }

    #[test]
    fn resume_without_checkpoint_file_is_refused() {
        let exp = quick();
        let path = temp_ckpt("missing");
        let policy = CampaignPolicy {
            checkpoint: Some(path),
            require_existing: true,
            ..CampaignPolicy::default()
        };
        let err = campaign_curve(&exp, &[0.2], 1, &policy).unwrap_err();
        assert!(err.contains("does not exist"), "{err}");
    }

    #[test]
    fn failed_points_are_checkpointed_and_not_rerun() {
        // A Failed outcome is a completed task: resuming must reuse it,
        // not retry it (retry budgets are per-process-run).
        let exp = quick();
        let compiled = exp.compile().unwrap();
        let path = temp_ckpt("failedpt");
        let _cleanup = Cleanup(path.clone());
        let mut ckpt = Checkpoint::open(
            &CampaignPolicy {
                checkpoint: Some(path.clone()),
                ..CampaignPolicy::default()
            },
            "curve",
            42,
            2,
        )
        .unwrap();
        let results = run_outcomes(
            1,
            0,
            ckpt.preloaded(2),
            |i, a, o| ckpt.append(i, a, o),
            |i, _, st| {
                if i == 0 {
                    panic!("boom");
                }
                compiled.run_typed(0.2, 5, st)
            },
        )
        .unwrap();
        assert!(results[0].0.is_failed());
        drop(ckpt);

        let mut ckpt = Checkpoint::open(
            &CampaignPolicy {
                checkpoint: Some(path.clone()),
                require_existing: true,
                ..CampaignPolicy::default()
            },
            "curve",
            42,
            2,
        )
        .unwrap();
        let preloaded = ckpt.preloaded(2);
        assert!(preloaded.iter().all(Option::is_some), "both tasks loaded");
        let resumed = run_outcomes(
            1,
            0,
            preloaded,
            |i, a, o| ckpt.append(i, a, o),
            |_, _, _| panic!("nothing should run on a complete checkpoint"),
        )
        .unwrap();
        assert!(resumed[0].0.is_failed());
        assert!(resumed[1].0.is_ok());
        assert!(results[1].0.ok_report().unwrap().bitwise_eq(
            resumed[1].0.ok_report().unwrap()
        ));
    }

    #[test]
    fn replicated_campaign_aggregates_ok_subset() {
        let exp = quick();
        let pts =
            campaign_replicated_curve(&exp, &[0.2], 3, 2, &CampaignPolicy::isolate()).unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].outcomes.len(), 3);
        assert!(pts[0].outcomes.iter().all(PointOutcome::is_ok));
        let stats = pts[0].ok_stats.as_ref().unwrap();
        assert_eq!(stats.replications.len(), 3);
        // Same seeds as the fragile path → bit-identical replications.
        let fragile = crate::sweep::replicated_curve(&exp, &[0.2], 3, 2).unwrap();
        for (a, b) in fragile[0].replications.iter().zip(&stats.replications) {
            assert!(a.bitwise_eq(b));
        }
    }

    #[test]
    fn degradation_campaign_matches_fragile_path() {
        let exp = quick();
        let fragile = crate::sweep::degradation_curve(&exp, 0.2, &[0, 1], 2, 2).unwrap();
        let campaign = campaign_degradation_curve(
            &exp,
            0.2,
            &[0, 1],
            2,
            2,
            &CampaignPolicy::isolate(),
        )
        .unwrap();
        for (f, c) in fragile.iter().zip(&campaign) {
            assert_eq!(f.fault_count, c.fault_count);
            let stats = c.ok_stats.as_ref().unwrap();
            for (a, b) in f.replications.iter().zip(&stats.replications) {
                assert!(a.bitwise_eq(b));
            }
        }
    }

    #[test]
    fn saturation_excludes_partial_points() {
        // Build a curve where the highest-throughput point is Partial
        // (budget-truncated past the knee): it must not be crowned.
        let exp = quick();
        let base = exp.run(0.2).unwrap();
        let mut fat = base.clone();
        fat.accepted_flits_per_node_cycle = base.accepted_flits_per_node_cycle * 2.0;
        fat.sustainable = true;
        fat.steady = true;
        let points = vec![
            CampaignPoint {
                offered: 0.2,
                outcome: PointOutcome::Ok(base),
                attempts: 1,
            },
            CampaignPoint {
                offered: 0.8,
                outcome: PointOutcome::Partial {
                    report: fat,
                    reason: "budget".into(),
                },
                attempts: 1,
            },
            CampaignPoint {
                offered: 1.2,
                outcome: PointOutcome::Failed {
                    reason: "panic".into(),
                },
                attempts: 1,
            },
        ];
        let sat = campaign_saturation_load(&points).unwrap();
        assert_eq!(sat.offered, 0.2, "Partial/Failed must never win");
        assert!(campaign_saturation_load(&points[1..]).is_none());
    }
}
