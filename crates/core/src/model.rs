//! Analytic companion models for the simulation.
//!
//! The paper is a pure simulation study; these closed-form bounds serve as
//! independent cross-checks of the engine (and they explain several curve
//! plateaus exactly):
//!
//! * **unloaded latency** — wormhole latency without contention is
//!   `path_channels + L − 1` cycles; averaged over uniform pairs this is
//!   `n + L` for the unidirectional MINs and `2·(E[t]+1) + L − 1` for the
//!   BMIN, with `E[t]` the mean `FirstDifference` of distinct pairs;
//! * **hot-spot ejection bound** — with the §5.1 formula the hot node
//!   receives a fraction `p_hot` of all traffic, so its single ejection
//!   channel caps sustained delivery at `1/p_hot` flits/cycle network-wide;
//! * **permutation capacity** — under a fixed permutation on a banyan
//!   MIN, each source's unique path shares its most-loaded channel with
//!   `m_s` other sources; max–min fair sharing bounds aggregate delivery
//!   by `Σ_s 1/m_s`. (For the perfect shuffle on the 64-node MIN this is
//!   the exact 25% plateau of Fig. 20.)

use minnet_topology::unidir::unique_path_positions;
use minnet_topology::{Geometry, NodeAddr, Perm, UnidirKind};
use std::collections::BTreeMap;

/// Unloaded (contention-free) latency in cycles of an `L`-flit message
/// over `path_channels` channels: header pipelining plus serialization.
pub fn unloaded_latency_cycles(path_channels: u32, len: u32) -> u64 {
    u64::from(path_channels) + u64::from(len) - 1
}

/// Mean `FirstDifference` over uniform ordered pairs of distinct nodes:
/// `P(t = i) = (k-1)·k^i / (k^n − 1)`.
pub fn mean_first_difference(g: &Geometry) -> f64 {
    let k = g.k() as f64;
    let n = g.n();
    let total = (g.nodes() - 1) as f64;
    (0..n)
        .map(|i| i as f64 * (k - 1.0) * k.powi(i as i32) / total)
        .sum()
}

/// Mean unloaded latency (cycles) under uniform traffic for a message of
/// mean length `mean_len`: unidirectional MINs cross `n + 1` channels;
/// the BMIN crosses `2·(t+1)`.
pub fn mean_unloaded_latency(g: &Geometry, bidirectional: bool, mean_len: f64) -> f64 {
    let path = if bidirectional {
        2.0 * (mean_first_difference(g) + 1.0)
    } else {
        (g.n() + 1) as f64
    };
    path + mean_len - 1.0
}

/// The hot node's share of traffic under the §5.1 formula, and the
/// resulting network-wide delivery cap in flits/cycle/node (fraction of
/// the one-port bound): the hot ejection channel carries `p_hot` of all
/// delivered flits, so total delivery ≤ `1/p_hot` and the per-node
/// normalised cap is `1/(p_hot · N)`.
pub fn hot_spot_cap(nodes: usize, extra: f64) -> f64 {
    let y = nodes as f64 * extra;
    let p_hot = (1.0 + y) / (nodes as f64 + y);
    (1.0 / p_hot) / nodes as f64
}

/// Aggregate delivery bound (flits/cycle/node, fraction of the one-port
/// bound) for permutation traffic on a unidirectional MIN: each sender is
/// limited by the occupancy of its busiest channel under max–min fair
/// sharing. Fixed points of the permutation send nothing.
pub fn permutation_capacity(g: &Geometry, kind: UnidirKind, perm: Perm) -> f64 {
    // Count, per (level, position), how many sender paths cross it.
    let mut occupancy: BTreeMap<(u32, u32), u32> = BTreeMap::new();
    let mut paths: Vec<(NodeAddr, Vec<(u32, u32)>)> = Vec::new();
    for s in g.addresses() {
        let d = perm.apply(g, s);
        if d == s {
            continue;
        }
        let path = unique_path_positions(g, kind, s, d);
        for &hop in &path {
            *occupancy.entry(hop).or_insert(0) += 1;
        }
        paths.push((s, path));
    }
    let total: f64 = paths
        .iter()
        .map(|(_, path)| {
            let worst = path
                .iter()
                .map(|hop| occupancy[hop])
                .max()
                .expect("paths are nonempty");
            1.0 / worst as f64
        })
        .sum();
    total / g.nodes() as f64
}

/// Delivery cap when only one cluster of `active` nodes generates
/// traffic, as a fraction of the `total`-node one-port bound.
pub fn single_cluster_cap(active: usize, total: usize) -> f64 {
    active as f64 / total as f64
}

/// The Kruskal–Snir throughput recurrence for unbuffered Delta networks
/// of `k × k` switches (the paper's ref \[5\] — the original analysis of
/// dilated MINs, for *packet* switching with uniform random traffic).
///
/// `offered` is the probability a node injects a packet in a cycle;
/// the network has `n` stages with `dilation` channels per inter-stage
/// port and single channels to/from the nodes (the paper's one-port
/// DMIN). Returns the accepted probability per node.
///
/// A channel carries a packet with probability `q`; a switch output port
/// fed by `k` ports of `d_in` channels each receives
/// `R ~ Binomial(k·d_in, q/k)` requests and passes `min(R, d_out)` of
/// them, so `q' = E[min(R, d_out)] / d_out`.
///
/// Wormhole switching blocks *worms*, not single-cycle packets, so the
/// simulator saturates below this bound — the model is the sanity
/// ceiling, and its dilation ordering mirrors Fig. 18's.
pub fn kruskal_snir_throughput(k: u32, n: u32, dilation: u32, offered: f64) -> f64 {
    assert!(k >= 2 && n >= 1 && dilation >= 1);
    assert!((0.0..=1.0).contains(&offered));
    let mut q = offered; // per-channel occupancy entering stage 0 (d_in = 1)
    let mut d_in = 1u32;
    for stage in 0..n {
        let d_out = if stage + 1 == n { 1 } else { dilation };
        q = expected_min_binomial(k * d_in, q / k as f64, d_out) / d_out as f64;
        d_in = d_out;
    }
    q
}

/// `E[min(R, cap)]` for `R ~ Binomial(m, p)`.
fn expected_min_binomial(m: u32, p: f64, cap: u32) -> f64 {
    let mut acc = 0.0;
    let mut choose = 1.0; // C(m, r)
    for r in 0..=m {
        if r > 0 {
            choose *= (m - r + 1) as f64 / r as f64;
        }
        let prob = choose * p.powi(r as i32) * (1.0 - p).powi((m - r) as i32);
        acc += prob * r.min(cap) as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::spec::NetworkSpec;
    use minnet_traffic::{MessageSizeDist, TrafficPattern};

    #[test]
    fn mean_first_difference_small_cases() {
        // k=2, n=1: the only other node differs in digit 0 → E[t] = 0.
        assert_eq!(mean_first_difference(&Geometry::new(2, 1)), 0.0);
        // k=2, n=2: pairs at t=0: 1, t=1: 2 → E[t] = 2/3.
        let g = Geometry::new(2, 2);
        assert!((mean_first_difference(&g) - 2.0 / 3.0).abs() < 1e-12);
        // Cross-check by enumeration for k=4, n=3.
        let g4 = Geometry::new(4, 3);
        let mut sum = 0.0;
        let mut count = 0.0;
        for s in g4.addresses() {
            for d in g4.addresses() {
                if let Some(t) = g4.first_difference(s, d) {
                    sum += t as f64;
                    count += 1.0;
                }
            }
        }
        assert!((mean_first_difference(&g4) - sum / count).abs() < 1e-12);
    }

    #[test]
    fn hot_spot_caps_match_paper_parameters() {
        // 64 nodes: x = 5% → p_hot = 4.2/67.2 → cap = 16 flits/cycle = 25%.
        assert!((hot_spot_cap(64, 0.05) - 0.25).abs() < 1e-12);
        // x = 10% → p_hot = 7.4/70.4 → cap ≈ 14.86%.
        assert!((hot_spot_cap(64, 0.10) - 70.4 / 7.4 / 64.0).abs() < 1e-12);
        // x = 0 degenerates to the uniform one-port bound.
        assert!((hot_spot_cap(64, 0.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shuffle_capacity_is_a_quarter_on_the_64_node_cube_min() {
        // Fig. 20's plateau: "some channels have to be shared by four
        // source and destination pairs".
        let g = Geometry::new(4, 3);
        let cap = permutation_capacity(&g, UnidirKind::Cube, Perm::PerfectShuffle);
        assert!(
            (cap - 0.25).abs() < 0.02,
            "shuffle capacity {cap} should sit at ~25%"
        );
        let cap_b2 = permutation_capacity(&g, UnidirKind::Cube, Perm::Butterfly(2));
        assert!((cap_b2 - 0.25).abs() < 0.02, "β₂ capacity {cap_b2}");
    }

    #[test]
    fn simulated_low_load_latency_matches_model() {
        for (spec, bidir) in [
            (NetworkSpec::tmin(), false),
            (NetworkSpec::Bmin, true),
        ] {
            let mut exp = Experiment::paper_default(spec);
            exp.sizes = MessageSizeDist::Fixed(64);
            exp.sim.warmup = 2_000;
            exp.sim.measure = 20_000;
            let r = exp.run(0.02).unwrap();
            let model = mean_unloaded_latency(&exp.geometry, bidir, 64.0);
            let rel = (r.mean_latency_cycles - model).abs() / model;
            assert!(
                rel < 0.05,
                "{}: measured {} vs model {model}",
                spec.name(),
                r.mean_latency_cycles
            );
        }
    }

    #[test]
    fn simulated_hot_spot_saturation_matches_cap() {
        // The ejection cap bounds *sustainable* delivery (where the
        // delivered mix matches the offered mix). Past saturation the
        // network preferentially delivers non-hot traffic, so raw
        // accepted throughput may drift a little above 1/p_hot; the
        // sustainable maximum must not.
        let mut exp = Experiment::paper_default(NetworkSpec::dmin(2));
        exp.pattern = TrafficPattern::HotSpot { extra: 0.10 };
        exp.sim.warmup = 10_000;
        exp.sim.measure = 60_000;
        let cap = hot_spot_cap(64, 0.10);
        let points =
            crate::sweep::latency_throughput_curve(&exp, &[0.08, 0.12, 0.15, 0.20], 1).unwrap();
        let sat = crate::sweep::saturation_load(&points).expect("a sustainable point exists");
        let got = sat.report.accepted_flits_per_node_cycle;
        // A point a few percent over the cap builds its backlog so slowly
        // (~15 queued messages per 100k cycles at +8%) that finite windows
        // cannot flag it; allow that resolution in the upper bound.
        assert!(got <= cap * 1.15, "sustainable {got} exceeds the ejection cap {cap}");
        assert!(
            got >= cap * 0.7,
            "sustainable {got} far below the cap {cap} — the DMIN should approach it"
        );
    }

    #[test]
    fn simulated_shuffle_plateau_matches_capacity() {
        let mut exp = Experiment::paper_default(NetworkSpec::tmin());
        exp.pattern = TrafficPattern::SHUFFLE;
        // Accepted throughput counts flits of window-generated packets
        // only. In deep overload a warmup backlog would delay those far
        // into the window and attenuate the measured plateau, so measure
        // from cycle 0 — the startup transient is a few hundred cycles.
        exp.sim.warmup = 0;
        exp.sim.measure = 60_000;
        let r = exp.run(0.9).unwrap();
        let cap = permutation_capacity(&exp.geometry, UnidirKind::Cube, Perm::PerfectShuffle);
        let rel = (r.accepted_flits_per_node_cycle - cap).abs() / cap;
        assert!(
            rel < 0.12,
            "measured plateau {} vs analytic capacity {cap}",
            r.accepted_flits_per_node_cycle
        );
    }

    #[test]
    fn single_cluster_cap_basics() {
        assert_eq!(single_cluster_cap(16, 64), 0.25);
        assert_eq!(single_cluster_cap(64, 64), 1.0);
    }

    #[test]
    fn kruskal_snir_classics() {
        // Single 2×2 stage at full load: 1 − (1/2)² = 0.75.
        assert!((kruskal_snir_throughput(2, 1, 1, 1.0) - 0.75).abs() < 1e-12);
        // The 3-stage 4-ary banyan: q1 = 1 − (3/4)⁴ ≈ 0.684, then ≈ 0.53,
        // then ≈ 0.43.
        let q = kruskal_snir_throughput(4, 3, 1, 1.0);
        assert!((0.42..0.45).contains(&q), "got {q}");
        // Dilation helps, monotonically, and never exceeds the input.
        let q2 = kruskal_snir_throughput(4, 3, 2, 1.0);
        let q4 = kruskal_snir_throughput(4, 3, 4, 1.0);
        assert!(q < q2 && q2 < q4 && q4 <= 1.0, "{q} {q2} {q4}");
        // Light load passes through almost losslessly.
        let light = kruskal_snir_throughput(4, 3, 1, 0.05);
        assert!((light - 0.05).abs() < 0.003);
    }

    #[test]
    fn expected_min_binomial_sanity() {
        // Uncapped: E[min(R, m)] = E[R] = m·p.
        assert!((expected_min_binomial(8, 0.25, 8) - 2.0).abs() < 1e-12);
        // cap 1: P(R ≥ 1).
        let got = expected_min_binomial(4, 0.5, 1);
        assert!((got - (1.0 - 0.5f64.powi(4))).abs() < 1e-12);
        // Degenerate p.
        assert_eq!(expected_min_binomial(4, 0.0, 2), 0.0);
        assert!((expected_min_binomial(4, 1.0, 2) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn wormhole_saturates_below_the_packet_switching_bound() {
        // The simulator's wormhole TMIN must saturate below the ref [5]
        // packet-switched ceiling, and the DMIN's measured gain must go in
        // the model's direction.
        let ks1 = kruskal_snir_throughput(4, 3, 1, 1.0);
        let ks2 = kruskal_snir_throughput(4, 3, 2, 1.0);
        let run = |spec: NetworkSpec| {
            let mut e = Experiment::paper_default(spec);
            e.sim.warmup = 8_000;
            e.sim.measure = 40_000;
            e.run(0.95).unwrap().accepted_flits_per_node_cycle
        };
        let tmin = run(NetworkSpec::tmin());
        let dmin = run(NetworkSpec::dmin(2));
        assert!(tmin < ks1, "wormhole TMIN {tmin} vs packet bound {ks1}");
        assert!(dmin < ks2, "wormhole DMIN {dmin} vs packet bound {ks2}");
        assert!(dmin > tmin, "dilation must help in the simulator too");
    }
}
