//! # minnet
//!
//! A from-scratch reproduction of **"Performance Evaluation of
//! Switch-Based Wormhole Networks"** (Lionel M. Ni, Yadong Gui, Sherry
//! Moore; ICPP 1995 / IEEE TPDS 8(5), May 1997): flit-level simulation of
//! the four wormhole multistage interconnection networks the paper
//! compares —
//!
//! * **TMIN** — traditional unidirectional MIN (cube or butterfly wiring),
//! * **DMIN** — d-dilated MIN (the paper evaluates dilation 2),
//! * **VMIN** — MIN with virtual channels (2 VCs per physical channel),
//! * **BMIN** — bidirectional butterfly MIN (a fat tree) with turnaround
//!   routing,
//!
//! plus the workload generators, partitionability theory (§4), and the
//! experiment harness needed to regenerate every evaluation figure (§5).
//!
//! ## Quickstart
//!
//! ```
//! use minnet::{Experiment, NetworkSpec};
//! use minnet_topology::Geometry;
//!
//! // The paper's 64-node network of 4×4 switches, dilation-2 DMIN,
//! // global uniform traffic at 40% load:
//! let mut exp = Experiment::paper_default(NetworkSpec::dmin(2));
//! exp.sim.warmup = 2_000;   // small windows for the doctest
//! exp.sim.measure = 10_000;
//! let report = exp.run(0.4).unwrap();
//! assert!(report.sustainable);
//! assert!(report.mean_latency_us() > 0.0);
//! ```
//!
//! The lower layers are re-exported: [`minnet_topology`] (networks &
//! theory), [`minnet_routing`] (destination-tag / turnaround routing,
//! deadlock analysis), [`minnet_switch`] (arbiters, VCs, crossbars),
//! [`minnet_traffic`] (workloads), [`minnet_sim`] (the engine) and
//! [`minnet_partition`] (§4 analysis).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod experiment;
pub mod lockfile;
pub mod model;
pub mod scenario;
pub mod service;
pub mod spec;
pub mod sweep;
pub mod table;

pub use campaign::{
    campaign_curve, campaign_degradation_curve, campaign_replicated_curve,
    campaign_saturation_load, outcome_counts, CampaignPoint, CampaignPolicy,
    DegradationCampaignPoint, PointOutcome, ReplicatedCampaignPoint,
};
pub use experiment::{CompiledExperiment, Experiment};
pub use lockfile::LockFile;
pub use service::{run_job, JobSpec, Request, Response, ServiceClient, ServiceStats};
pub use scenario::{
    run_scenario_files, run_scenario_files_with_budget, scenario_files, verdict_report_json,
    CheckResult, CheckStatus,
    Expectations, Scenario, ScenarioBuilder, ScenarioPoint, ScenarioSet, Verdict, VerdictStatus,
};
pub use spec::NetworkSpec;
pub use sweep::{
    compiled_curve, degradation_curve, find_saturation, latency_throughput_curve,
    replicated_curve, saturation_load, DegradationPoint, ReplicatedPoint, SweepPoint,
};
pub use table::{curve_csv, curve_table};

// Re-export the layer crates under stable names.
pub use minnet_mcast as mcast;
pub use minnet_partition as partition;
pub use minnet_routing as routing;
pub use minnet_sim as sim;
pub use minnet_switch as switch;
pub use minnet_topology as topology;
pub use minnet_traffic as traffic;
