//! Load sweeps: the latency–throughput curves behind every §5 figure.
//!
//! Individual simulation runs are sequential discrete-time programs, but a
//! sweep's load points (and a replicated design's `(point, replication)`
//! pairs) are independent — the natural parallel axis. Every sweep here:
//!
//! * compiles its experiment **once** ([`CompiledExperiment`]: network
//!   graph, routing table, transmit order, workload template) and shares
//!   the immutable artifacts across workers;
//! * fans tasks out over a scoped thread pool claiming work from a shared
//!   atomic cursor, each worker reusing **its own**
//!   [`EngineState`](minnet_sim::EngineState) allocation run after run;
//! * writes into pre-sized per-task slots, so the output order (and,
//!   thanks to per-task seeds, the numbers themselves) is independent of
//!   the thread count.
//!
//! Seeds are per-task SplitMix64 mixes of the experiment's base seed, so
//! curves are deterministic, decorrelated across points, and — because the
//! compiled path is bit-identical to [`Experiment::run_seeded`] — exactly
//! the numbers the original per-run sweep produced.

use crate::campaign::{run_outcomes, PointOutcome};
use crate::experiment::{CompiledExperiment, Experiment};
use minnet_sim::stats::Welford;
use minnet_sim::{CompiledFaults, EngineState, SimError, SimReport};
use minnet_topology::FaultPlan;

/// One point of a latency–throughput curve.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Nominal offered load (flits/cycle/node).
    pub offered: f64,
    /// The simulation report at that load.
    pub report: SimReport,
}

/// SplitMix64 — decorrelates per-point seeds from the base seed.
pub(crate) fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Run `total` independent tasks on `threads` scoped workers, each worker
/// owning one reusable [`EngineState`]. `run(task, state)` fills slot
/// `task`; results come back in task order. The shared cursor hands tasks
/// out first-come-first-served, but per-task seeding makes the *values*
/// schedule-independent.
///
/// This is the strict all-or-nothing surface: the first non-`Ok` point
/// (in task order) turns the whole sweep into its `Err` — including a
/// worker panic, which [`crate::campaign::run_outcomes`] contains and
/// reports as a message instead of poisoning a lock and aborting the
/// process. Campaign callers that want complete annotated curves use
/// [`crate::campaign`] directly.
fn run_tasks(
    total: usize,
    threads: usize,
    run: impl Fn(usize, &mut EngineState) -> Result<SimReport, String> + Sync,
) -> Result<Vec<SimReport>, String> {
    let results = run_outcomes(
        threads,
        0,
        (0..total).map(|_| None).collect(),
        |_, _, _| Ok(()),
        |i, _attempt, st| run(i, st).map_err(SimError::Config),
    )?;
    strict_reports(results)
}

/// Collapse annotated campaign outcomes to the strict sweep surface:
/// the first non-`Ok` point (in task order) fails the whole sweep.
fn strict_reports(
    results: Vec<(PointOutcome, u32)>,
) -> Result<Vec<SimReport>, String> {
    results
        .into_iter()
        .map(|(outcome, _attempts)| match outcome {
            PointOutcome::Ok(report) => Ok(report),
            PointOutcome::Partial { reason, .. } | PointOutcome::Failed { reason } => Err(reason),
        })
        .collect()
}

/// Evaluate the experiment at every load in `loads`, in parallel on
/// `threads` workers (1 = sequential). Results come back in `loads`
/// order; numbers are identical for any thread count.
pub fn latency_throughput_curve(
    exp: &Experiment,
    loads: &[f64],
    threads: usize,
) -> Result<Vec<SweepPoint>, String> {
    if loads.is_empty() {
        return Ok(Vec::new());
    }
    let compiled = exp.compile()?;
    compiled_curve(&compiled, loads, threads)
}

/// [`latency_throughput_curve`] against an already-compiled experiment —
/// chain several sweeps without paying compilation again.
pub fn compiled_curve(
    compiled: &CompiledExperiment,
    loads: &[f64],
    threads: usize,
) -> Result<Vec<SweepPoint>, String> {
    let base = compiled.base_seed();
    let reports = run_tasks(loads.len(), threads, |i, st| {
        compiled.run_with(loads[i], mix(base, i as u64 + 1), st)
    })?;
    Ok(loads
        .iter()
        .zip(reports)
        .map(|(&offered, report)| SweepPoint { offered, report })
        .collect())
}

/// One load point of a replicated sweep: `R` independent runs (one seed
/// each) aggregated into across-replication means and 95% confidence
/// half-widths. Unlike the within-run batch-means interval — which must
/// fight autocorrelation — replication means are independent samples, so
/// the classical i.i.d. interval `t₀.₀₂₅,R₋₁·s/√R` applies.
/// [`Welford::ci95_half_width`] uses the Student-t critical value for
/// the small `R` typical here (4.30 at `R = 3`, not 1.96 — the normal
/// approximation would understate a 3-replication interval by half).
#[derive(Clone, Debug)]
pub struct ReplicatedPoint {
    /// Nominal offered load (flits/cycle/node).
    pub offered: f64,
    /// Per-replication reports, in replication order.
    pub replications: Vec<SimReport>,
    /// Mean over replications of the mean message latency (cycles).
    pub mean_latency_cycles: f64,
    /// 95% half-width of the latency mean across replications.
    pub latency_ci95_cycles: f64,
    /// Mean over replications of accepted throughput (flits/node/cycle).
    pub accepted_flits_per_node_cycle: f64,
    /// 95% half-width of accepted throughput across replications.
    pub accepted_ci95: f64,
    /// Whether *every* replication was sustainable (§5 queue criterion).
    pub sustainable: bool,
    /// Whether *every* replication kept delivery pace with generation.
    pub steady: bool,
}

/// Evaluate every load in `loads` with `replications` independent seeded
/// runs each, parallel over the whole `(point, replication)` grid on
/// `threads` workers. Task `(i, r)` uses seed `mix(base, i·R + r + 1)` —
/// for `R = 1` exactly the seeds (and hence bit-exactly the reports) of
/// [`latency_throughput_curve`].
///
/// # Errors
///
/// Reports a zero replication count, invalid experiments, and invalid
/// loads.
pub fn replicated_curve(
    exp: &Experiment,
    loads: &[f64],
    replications: usize,
    threads: usize,
) -> Result<Vec<ReplicatedPoint>, String> {
    if replications == 0 {
        return Err("replicated sweep needs at least one replication".into());
    }
    if loads.is_empty() {
        return Ok(Vec::new());
    }
    let compiled = exp.compile()?;
    let base = compiled.base_seed();
    let total = loads.len() * replications;
    // R > 1 replications of a budget-free experiment run as lockstep
    // fleets, one per load point; seeds stay the grid's
    // `mix(base, i·R + r + 1)`, so reports are bit-identical to the
    // scalar grid either way (pinned by the scalar≡lockstep suite).
    let reports = if replications > 1 && compiled.network().lockstep_eligible() {
        let results = crate::campaign::run_replicated_outcomes_lockstep(
            &compiled,
            loads,
            replications,
            threads,
            0,
            (0..total).map(|_| None).collect(),
            |_, _, _| Ok(()),
        )?;
        strict_reports(results)?
    } else {
        run_tasks(total, threads, |t, st| {
            let (i, _r) = (t / replications, t % replications);
            compiled.run_with(loads[i], mix(base, t as u64 + 1), st)
        })?
    };

    let mut out = Vec::with_capacity(loads.len());
    let mut reports = reports.into_iter();
    for &offered in loads {
        let reps: Vec<SimReport> = reports.by_ref().take(replications).collect();
        out.push(aggregate_replicated(offered, reps));
    }
    Ok(out)
}

/// Fold one load point's replication reports into a [`ReplicatedPoint`]
/// (shared with the campaign layer, which aggregates the `Ok` subset of
/// a partially-failed point).
pub(crate) fn aggregate_replicated(offered: f64, reps: Vec<SimReport>) -> ReplicatedPoint {
    let mut lat = Welford::new();
    let mut acc = Welford::new();
    for r in &reps {
        lat.push(r.mean_latency_cycles);
        acc.push(r.accepted_flits_per_node_cycle);
    }
    ReplicatedPoint {
        offered,
        mean_latency_cycles: lat.mean(),
        latency_ci95_cycles: lat.ci95_half_width(),
        accepted_flits_per_node_cycle: acc.mean(),
        accepted_ci95: acc.ci95_half_width(),
        sustainable: reps.iter().all(|r| r.sustainable),
        steady: reps.iter().all(|r| r.steady),
        replications: reps,
    }
}

/// One point of a graceful-degradation curve: `R` replications at a fixed
/// offered load, under `fault_count` randomly-placed permanent inter-stage
/// link faults. Aggregates follow [`ReplicatedPoint`] (independent
/// replications, Student-t 95% half-widths) and add the fault-specific
/// accounting: packets the engine aborted at a fault onset and packets it
/// refused because no live route to their destination existed.
#[derive(Clone, Debug)]
pub struct DegradationPoint {
    /// Number of inter-stage links killed for this point.
    pub fault_count: usize,
    /// Per-replication reports, in replication order.
    pub replications: Vec<SimReport>,
    /// Mean over replications of the mean message latency (cycles).
    pub mean_latency_cycles: f64,
    /// 95% half-width of the latency mean across replications.
    pub latency_ci95_cycles: f64,
    /// Mean over replications of accepted throughput (flits/node/cycle).
    pub accepted_flits_per_node_cycle: f64,
    /// 95% half-width of accepted throughput across replications.
    pub accepted_ci95: f64,
    /// Mean over replications of measured packets aborted mid-flight.
    pub mean_aborted_packets: f64,
    /// Mean over replications of measured packets refused at injection
    /// (destination unreachable under the fault set).
    pub mean_undeliverable_packets: f64,
    /// Whether *every* replication was sustainable (§5 queue criterion).
    pub sustainable: bool,
    /// Whether *every* replication kept delivery pace with generation.
    pub steady: bool,
}

/// Evaluate the experiment at one offered load under increasing numbers of
/// randomly-killed inter-stage links — the graceful-degradation companion
/// to the §5 latency–throughput curves. For each entry of `fault_counts` a
/// fault set is drawn seed-reproducibly
/// ([`FaultPlan::random_inter_stage_links`], salted with the count), its
/// masked routing table is compiled **once**, and `replications`
/// independent seeded runs are fanned out over the whole
/// `(point, replication)` grid on `threads` workers. Task `(i, r)` uses
/// seed `mix(base, i·R + r + 1)` — for a single `fault_counts = [0]` entry
/// exactly the seeds (hence bit-exactly the reports) of
/// [`replicated_curve`] at one load.
///
/// Networks with path diversity (BMIN, DMIN) route around dead links and
/// keep delivering; single-path networks (TMIN, VMIN) report the
/// disconnected traffic as `mean_undeliverable_packets` instead of
/// stalling or panicking.
///
/// # Errors
///
/// Reports a zero replication count, invalid experiments, fault sets
/// larger than the network's inter-stage link pool, and fault sets whose
/// masked channel-dependency graph would deadlock.
pub fn degradation_curve(
    exp: &Experiment,
    offered_load: f64,
    fault_counts: &[usize],
    replications: usize,
    threads: usize,
) -> Result<Vec<DegradationPoint>, String> {
    if replications == 0 {
        return Err("degradation sweep needs at least one replication".into());
    }
    if fault_counts.is_empty() {
        return Ok(Vec::new());
    }
    let compiled = exp.compile()?;
    let base = compiled.base_seed();
    let workload = compiled.template().workload_at(offered_load)?;

    // Fault placement is a deterministic function of (base seed, count):
    // re-running with a refined count list reuses the same fault sets.
    let faulted: Vec<CompiledFaults> = fault_counts
        .iter()
        .map(|&count| {
            let plan = FaultPlan::random_inter_stage_links(
                compiled.graph(),
                count,
                mix(base, 0xFA_0017 + count as u64),
            )?;
            compiled.network().compile_faults(&plan).map_err(String::from)
        })
        .collect::<Result<_, String>>()?;

    let total = fault_counts.len() * replications;
    let reports = run_tasks(total, threads, |t, st| {
        let i = t / replications;
        compiled
            .network()
            .run_poisson_faulted(&workload, Some(&faulted[i]), mix(base, t as u64 + 1), st)
            .map_err(String::from)
    })?;

    let mut out = Vec::with_capacity(fault_counts.len());
    let mut reports = reports.into_iter();
    for &fault_count in fault_counts {
        let reps: Vec<SimReport> = reports.by_ref().take(replications).collect();
        out.push(aggregate_degradation(fault_count, reps));
    }
    Ok(out)
}

/// Fold one fault count's replication reports into a
/// [`DegradationPoint`] (shared with the campaign layer).
pub(crate) fn aggregate_degradation(fault_count: usize, reps: Vec<SimReport>) -> DegradationPoint {
    let mut lat = Welford::new();
    let mut acc = Welford::new();
    let mut aborted = Welford::new();
    let mut refused = Welford::new();
    for r in &reps {
        lat.push(r.mean_latency_cycles);
        acc.push(r.accepted_flits_per_node_cycle);
        aborted.push(r.aborted_packets as f64);
        refused.push(r.undeliverable_packets as f64);
    }
    DegradationPoint {
        fault_count,
        mean_latency_cycles: lat.mean(),
        latency_ci95_cycles: lat.ci95_half_width(),
        accepted_flits_per_node_cycle: acc.mean(),
        accepted_ci95: acc.ci95_half_width(),
        mean_aborted_packets: aborted.mean(),
        mean_undeliverable_packets: refused.mean(),
        sustainable: reps.iter().all(|r| r.sustainable),
        steady: reps.iter().all(|r| r.steady),
        replications: reps,
    }
}

/// Locate the saturation boundary by bisection: the largest offered load
/// in `[lo, hi]` that remains sustainable, refined over `iters` halvings.
/// Returns the boundary load and its report, or `None` when even `lo`
/// saturates. Each probe uses a seed derived from the iteration, so the
/// search is deterministic. The experiment is compiled once; the probes
/// reuse this thread's pooled engine state.
///
/// A probe cut by the experiment's [`minnet_sim::RunBudget`] counts as
/// *saturated*: past the knee the network backs up and a run's wall time
/// explodes, so "too expensive to finish" is itself evidence the load is
/// beyond the boundary. The truncated probe's report is discarded — the
/// returned boundary report always comes from a completed run.
pub fn find_saturation(
    exp: &Experiment,
    lo: f64,
    hi: f64,
    iters: u32,
) -> Result<Option<SweepPoint>, String> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    let compiled = exp.compile()?;
    let base = compiled.base_seed();
    let mut lo = lo;
    let mut hi = hi;
    // Establish the bracket; a budget cut at the floor means even `lo`
    // is past (or too expensive to confirm below) saturation.
    let first = match compiled.run_seeded_typed(lo, mix(base, 0xB15EC7)) {
        Ok(report) => report,
        Err(SimError::BudgetExceeded(_)) => return Ok(None),
        Err(e) => return Err(e.to_string()),
    };
    if !(first.sustainable && first.steady) {
        return Ok(None);
    }
    let mut best = Some(SweepPoint {
        offered: lo,
        report: first,
    });
    for i in 0..iters {
        let mid = 0.5 * (lo + hi);
        match compiled.run_seeded_typed(mid, mix(base, 0xB15EC7 + 1 + u64::from(i))) {
            Ok(report) if report.sustainable && report.steady => {
                best = Some(SweepPoint {
                    offered: mid,
                    report,
                });
                lo = mid;
            }
            Ok(_) | Err(SimError::BudgetExceeded(_)) => hi = mid,
            Err(e) => return Err(e.to_string()),
        }
    }
    Ok(best)
}

/// The largest *sustainable* accepted throughput found on a curve — the
/// paper's "maximum network throughput" (§5: sustainable means no source
/// queue exceeded the limit; we additionally require the run to be
/// steady, i.e. delivery kept pace with generation).
pub fn saturation_load(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points
        .iter()
        .filter(|p| p.report.sustainable && p.report.steady)
        .max_by(|a, b| {
            a.report
                .accepted_flits_per_node_cycle
                .total_cmp(&b.report.accepted_flits_per_node_cycle)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NetworkSpec;
    use minnet_traffic::MessageSizeDist;

    fn quick() -> Experiment {
        let mut e = Experiment::paper_default(NetworkSpec::tmin());
        e.sizes = MessageSizeDist::Fixed(32);
        e.sim.warmup = 500;
        e.sim.measure = 4_000;
        e
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let exp = quick();
        let loads = [0.1, 0.3, 0.5];
        let seq = latency_throughput_curve(&exp, &loads, 1).unwrap();
        let par = latency_throughput_curve(&exp, &loads, 3).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.offered, b.offered);
            assert!(a.report.bitwise_eq(&b.report));
        }
    }

    #[test]
    fn sweep_matches_per_run_path_bitwise() {
        // The compiled sweep must reproduce exactly what per-point
        // `Experiment::run_seeded` calls produced before the rewrite.
        let exp = quick();
        let loads = [0.15, 0.45];
        let pts = latency_throughput_curve(&exp, &loads, 2).unwrap();
        for (i, p) in pts.iter().enumerate() {
            let direct = exp
                .run_seeded(loads[i], mix(exp.sim.seed, i as u64 + 1))
                .unwrap();
            assert!(p.report.bitwise_eq(&direct), "point {i} diverged");
        }
    }

    #[test]
    fn latency_grows_with_load() {
        let exp = quick();
        let pts = latency_throughput_curve(&exp, &[0.1, 0.6], 2).unwrap();
        assert!(
            pts[1].report.mean_latency_cycles > pts[0].report.mean_latency_cycles,
            "latency must increase toward saturation"
        );
    }

    #[test]
    fn saturation_picks_best_sustainable() {
        let exp = quick();
        let pts = latency_throughput_curve(&exp, &[0.1, 0.4, 2.0], 2).unwrap();
        let sat = saturation_load(&pts).unwrap();
        assert!(sat.report.sustainable);
        assert!(sat.offered < 2.0, "overload cannot be the sustainable max");
    }

    #[test]
    fn empty_sweep() {
        let exp = quick();
        assert!(latency_throughput_curve(&exp, &[], 4).unwrap().is_empty());
        assert!(replicated_curve(&exp, &[], 3, 4).unwrap().is_empty());
        assert!(saturation_load(&[]).is_none());
    }

    #[test]
    fn bisection_brackets_the_knee() {
        let exp = quick();
        let sat = find_saturation(&exp, 0.05, 1.5, 5).unwrap().unwrap();
        // The TMIN's knee lies strictly inside the bracket …
        assert!(sat.offered > 0.05 && sat.offered < 1.5);
        assert!(sat.report.sustainable);
        // … and pushing clearly past it is unsustainable.
        let beyond = exp.run(1.4).unwrap();
        assert!(!beyond.sustainable);
        assert!(sat.offered < 1.0, "one-port bound caps the knee below 1.0");
    }

    #[test]
    fn bisection_reports_none_when_floor_saturates() {
        let mut exp = quick();
        exp.sim.queue_limit = 0; // nothing is sustainable
        assert!(find_saturation(&exp, 0.3, 0.9, 3).unwrap().is_none());
    }

    #[test]
    fn bisection_treats_budget_cut_probes_as_saturated() {
        // Every probe is cut by a cycle budget below the horizon: the
        // floor probe cannot be confirmed sustainable, so the search
        // reports None instead of crowning a truncated report (or
        // erroring the search).
        let mut exp = quick();
        exp.sim.budget = minnet_sim::RunBudget {
            max_cycles: exp.sim.warmup + 100,
            max_wall_ms: 0,
        };
        assert!(find_saturation(&exp, 0.05, 1.5, 4).unwrap().is_none());
    }

    #[test]
    fn bisection_unchanged_when_budget_covers_the_horizon() {
        let exp = quick();
        let plain = find_saturation(&exp, 0.05, 1.5, 5).unwrap().unwrap();
        let mut budgeted_exp = quick();
        budgeted_exp.sim.budget = minnet_sim::RunBudget {
            max_cycles: budgeted_exp.sim.warmup + budgeted_exp.sim.measure,
            max_wall_ms: 0,
        };
        let budgeted = find_saturation(&budgeted_exp, 0.05, 1.5, 5)
            .unwrap()
            .unwrap();
        assert_eq!(plain.offered, budgeted.offered);
        assert!(plain.report.bitwise_eq(&budgeted.report));
    }

    #[test]
    fn saturation_load_requires_both_flags() {
        // A point that is sustainable but not steady (delivery fell
        // behind) must not be crowned — the campaign layer additionally
        // excludes Partial/Failed outcomes (see campaign tests).
        let exp = quick();
        let pts = latency_throughput_curve(&exp, &[0.1, 0.2], 1).unwrap();
        let mut doctored = pts.clone();
        doctored[1].report.steady = false;
        doctored[1].report.accepted_flits_per_node_cycle = 99.0;
        let sat = saturation_load(&doctored).unwrap();
        assert_eq!(sat.offered, 0.1);
    }

    #[test]
    fn replicated_curve_aggregates_independent_seeds() {
        let mut exp = quick();
        // A window long enough that the end-of-run transient cannot push
        // a replication below the 95% steady criterion at these loads.
        exp.sim.measure = 12_000;
        let pts = replicated_curve(&exp, &[0.15, 0.35], 4, 3).unwrap();
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert_eq!(p.replications.len(), 4);
            // Different seeds must actually differ …
            let first = p.replications[0].mean_latency_cycles;
            assert!(
                p.replications
                    .iter()
                    .any(|r| r.mean_latency_cycles != first),
                "replications collapsed to one seed"
            );
            // … and the aggregate lies inside the replication range.
            let lo = p
                .replications
                .iter()
                .map(|r| r.mean_latency_cycles)
                .fold(f64::INFINITY, f64::min);
            let hi = p
                .replications
                .iter()
                .map(|r| r.mean_latency_cycles)
                .fold(f64::NEG_INFINITY, f64::max);
            assert!(p.mean_latency_cycles >= lo && p.mean_latency_cycles <= hi);
            assert!(p.latency_ci95_cycles > 0.0);
            assert!(p.accepted_ci95 >= 0.0);
            assert!(p.sustainable && p.steady);
        }
        // More load, more latency — also through the aggregate.
        assert!(pts[1].mean_latency_cycles > pts[0].mean_latency_cycles);
    }

    #[test]
    fn replicated_ci_uses_student_t_across_replications() {
        // R = 3 → 2 degrees of freedom → t₀.₀₂₅ = 4.303, rebuilt here
        // from the published replication reports. The old normal-based
        // 1.96·s/√3 would be ~2.2× too narrow.
        let exp = quick();
        let p = &replicated_curve(&exp, &[0.3], 3, 1).unwrap()[0];
        let lats: Vec<f64> = p
            .replications
            .iter()
            .map(|r| r.mean_latency_cycles)
            .collect();
        let mean = lats.iter().sum::<f64>() / 3.0;
        let var = lats.iter().map(|l| (l - mean).powi(2)).sum::<f64>() / 2.0;
        let want = 4.303 * (var / 3.0).sqrt();
        assert!(
            (p.latency_ci95_cycles - want).abs() <= 1e-9 * want,
            "ci {} vs t-based {want}",
            p.latency_ci95_cycles
        );
        let normal = 1.96 * (var / 3.0).sqrt();
        assert!(p.latency_ci95_cycles > 2.0 * normal);
    }

    #[test]
    fn replicated_curve_is_thread_count_invariant() {
        let exp = quick();
        let a = replicated_curve(&exp, &[0.3], 3, 1).unwrap();
        let b = replicated_curve(&exp, &[0.3], 3, 4).unwrap();
        for (x, y) in a[0].replications.iter().zip(&b[0].replications) {
            assert!(x.bitwise_eq(y));
        }
        assert_eq!(a[0].latency_ci95_cycles.to_bits(), b[0].latency_ci95_cycles.to_bits());
    }

    #[test]
    fn single_replication_matches_plain_curve() {
        // R = 1 uses the same task seeds as the plain sweep, so the
        // reports must be bit-identical.
        let exp = quick();
        let loads = [0.2, 0.4];
        let plain = latency_throughput_curve(&exp, &loads, 2).unwrap();
        let reps = replicated_curve(&exp, &loads, 1, 2).unwrap();
        for (p, r) in plain.iter().zip(&reps) {
            assert!(p.report.bitwise_eq(&r.replications[0]));
            assert_eq!(r.latency_ci95_cycles, 0.0); // one sample, no CI
        }
    }

    #[test]
    fn replicated_curve_rejects_zero_replications() {
        assert!(replicated_curve(&quick(), &[0.2], 0, 1).is_err());
    }

    #[test]
    fn degradation_zero_faults_matches_replicated_curve() {
        // A zero-fault point compiles a trivial schedule, which the engine
        // normalises away — the reports must be bit-identical to the
        // plain replicated sweep at the same (load, seed) grid.
        let exp = quick();
        let faultless = replicated_curve(&exp, &[0.25], 3, 2).unwrap();
        let degraded = degradation_curve(&exp, 0.25, &[0], 3, 2).unwrap();
        assert_eq!(degraded.len(), 1);
        assert_eq!(degraded[0].fault_count, 0);
        assert_eq!(degraded[0].mean_aborted_packets, 0.0);
        assert_eq!(degraded[0].mean_undeliverable_packets, 0.0);
        for (a, b) in faultless[0].replications.iter().zip(&degraded[0].replications) {
            assert!(a.bitwise_eq(b), "zero-fault point diverged from faultless run");
        }
    }

    #[test]
    fn bmin_routes_around_single_link_fault() {
        // BMIN's path diversity: every stage-0 switch keeps k-1 live
        // parents after one link dies, so no destination disconnects and
        // traffic keeps flowing.
        let mut exp = quick();
        exp.network = NetworkSpec::Bmin;
        let pts = degradation_curve(&exp, 0.2, &[1], 2, 2).unwrap();
        let p = &pts[0];
        assert_eq!(p.mean_undeliverable_packets, 0.0, "BMIN must not disconnect");
        assert!(p.sustainable, "BMIN must sustain 0.2 load around one dead link");
        for r in &p.replications {
            assert!(r.delivered_packets > 0);
        }
    }

    #[test]
    fn tmin_reports_structured_disconnection() {
        // TMIN has a unique path per (src, dst): a dead inter-stage link
        // disconnects some pairs. The engine must refuse that traffic with
        // accounting — not panic, not hang.
        let pts = degradation_curve(&quick(), 0.2, &[1, 2], 1, 2).unwrap();
        assert!(
            pts.iter().any(|p| p.mean_undeliverable_packets > 0.0),
            "uniform traffic over a cut TMIN must hit a disconnected pair"
        );
        for p in &pts {
            for r in &p.replications {
                assert!(r.delivered_packets > 0, "connected pairs still deliver");
            }
        }
    }

    #[test]
    fn degradation_curve_is_thread_count_invariant() {
        let exp = quick();
        let a = degradation_curve(&exp, 0.2, &[0, 1], 2, 1).unwrap();
        let b = degradation_curve(&exp, 0.2, &[0, 1], 2, 4).unwrap();
        for (x, y) in a.iter().zip(&b) {
            for (r, s) in x.replications.iter().zip(&y.replications) {
                assert!(r.bitwise_eq(s));
            }
        }
    }

    #[test]
    fn degradation_curve_rejects_bad_inputs() {
        assert!(degradation_curve(&quick(), 0.2, &[0], 0, 1).is_err());
        // More faults than inter-stage links.
        assert!(degradation_curve(&quick(), 0.2, &[100_000], 1, 1).is_err());
        assert!(degradation_curve(&quick(), 0.2, &[], 1, 1).unwrap().is_empty());
    }
}
