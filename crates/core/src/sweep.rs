//! Load sweeps: the latency–throughput curves behind every §5 figure.
//!
//! Individual simulation runs are sequential discrete-time programs, but a
//! sweep's load points are independent — the natural parallel axis. The
//! sweep fans the points out over a scoped thread pool that claims work
//! from a shared atomic cursor; each worker writes into its point's
//! pre-sized slot, so the output order (and, thanks to per-point seeds,
//! the numbers themselves) is independent of the thread count.

use crate::experiment::Experiment;
use minnet_sim::SimReport;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// One point of a latency–throughput curve.
#[derive(Clone, Debug)]
pub struct SweepPoint {
    /// Nominal offered load (flits/cycle/node).
    pub offered: f64,
    /// The simulation report at that load.
    pub report: SimReport,
}

/// SplitMix64 — decorrelates per-point seeds from the base seed.
fn mix(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Evaluate the experiment at every load in `loads`, in parallel on
/// `threads` workers (1 = sequential). Results come back in `loads`
/// order; numbers are identical for any thread count.
pub fn latency_throughput_curve(
    exp: &Experiment,
    loads: &[f64],
    threads: usize,
) -> Result<Vec<SweepPoint>, String> {
    let threads = threads.max(1).min(loads.len().max(1));
    let slots: Vec<Mutex<Option<Result<SimReport, String>>>> =
        loads.iter().map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let cursor = &cursor;
            let slots = &slots;
            scope.spawn(move || loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= loads.len() {
                    break;
                }
                let seed = mix(exp.sim.seed, i as u64 + 1);
                let res = exp.run_seeded(loads[i], seed);
                *slots[i].lock().expect("sweep worker panicked") = Some(res);
            });
        }
    });

    let mut out = Vec::with_capacity(loads.len());
    for (i, slot) in slots.into_iter().enumerate() {
        let slot = slot.into_inner().expect("sweep worker panicked");
        let report = slot.expect("every slot is filled")?;
        out.push(SweepPoint {
            offered: loads[i],
            report,
        });
    }
    Ok(out)
}

/// Locate the saturation boundary by bisection: the largest offered load
/// in `[lo, hi]` that remains sustainable, refined over `iters` halvings.
/// Returns the boundary load and its report, or `None` when even `lo`
/// saturates. Each probe uses a seed derived from the iteration, so the
/// search is deterministic.
pub fn find_saturation(
    exp: &Experiment,
    lo: f64,
    hi: f64,
    iters: u32,
) -> Result<Option<SweepPoint>, String> {
    assert!(lo > 0.0 && hi > lo, "need 0 < lo < hi");
    let mut lo = lo;
    let mut hi = hi;
    // Establish the bracket.
    let first = exp.run_seeded(lo, mix(exp.sim.seed, 0xB15EC7))?;
    if !(first.sustainable && first.steady) {
        return Ok(None);
    }
    let mut best = Some(SweepPoint {
        offered: lo,
        report: first,
    });
    for i in 0..iters {
        let mid = 0.5 * (lo + hi);
        let report = exp.run_seeded(mid, mix(exp.sim.seed, 0xB15EC7 + 1 + i as u64))?;
        if report.sustainable && report.steady {
            best = Some(SweepPoint {
                offered: mid,
                report,
            });
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(best)
}

/// The largest *sustainable* accepted throughput found on a curve — the
/// paper's "maximum network throughput" (§5: sustainable means no source
/// queue exceeded the limit; we additionally require the run to be
/// steady, i.e. delivery kept pace with generation).
pub fn saturation_load(points: &[SweepPoint]) -> Option<&SweepPoint> {
    points
        .iter()
        .filter(|p| p.report.sustainable && p.report.steady)
        .max_by(|a, b| {
            a.report
                .accepted_flits_per_node_cycle
                .total_cmp(&b.report.accepted_flits_per_node_cycle)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::NetworkSpec;
    use minnet_traffic::MessageSizeDist;

    fn quick() -> Experiment {
        let mut e = Experiment::paper_default(NetworkSpec::tmin());
        e.sizes = MessageSizeDist::Fixed(32);
        e.sim.warmup = 500;
        e.sim.measure = 4_000;
        e
    }

    #[test]
    fn sweep_is_thread_count_invariant() {
        let exp = quick();
        let loads = [0.1, 0.3, 0.5];
        let seq = latency_throughput_curve(&exp, &loads, 1).unwrap();
        let par = latency_throughput_curve(&exp, &loads, 3).unwrap();
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.offered, b.offered);
            assert_eq!(a.report.mean_latency_cycles, b.report.mean_latency_cycles);
            assert_eq!(a.report.delivered_packets, b.report.delivered_packets);
        }
    }

    #[test]
    fn latency_grows_with_load() {
        let exp = quick();
        let pts = latency_throughput_curve(&exp, &[0.1, 0.6], 2).unwrap();
        assert!(
            pts[1].report.mean_latency_cycles > pts[0].report.mean_latency_cycles,
            "latency must increase toward saturation"
        );
    }

    #[test]
    fn saturation_picks_best_sustainable() {
        let exp = quick();
        let pts = latency_throughput_curve(&exp, &[0.1, 0.4, 2.0], 2).unwrap();
        let sat = saturation_load(&pts).unwrap();
        assert!(sat.report.sustainable);
        assert!(sat.offered < 2.0, "overload cannot be the sustainable max");
    }

    #[test]
    fn empty_sweep() {
        let exp = quick();
        assert!(latency_throughput_curve(&exp, &[], 4).unwrap().is_empty());
        assert!(saturation_load(&[]).is_none());
    }

    #[test]
    fn bisection_brackets_the_knee() {
        let exp = quick();
        let sat = find_saturation(&exp, 0.05, 1.5, 5).unwrap().unwrap();
        // The TMIN's knee lies strictly inside the bracket …
        assert!(sat.offered > 0.05 && sat.offered < 1.5);
        assert!(sat.report.sustainable);
        // … and pushing clearly past it is unsustainable.
        let beyond = exp.run(1.4).unwrap();
        assert!(!beyond.sustainable);
        assert!(sat.offered < 1.0, "one-port bound caps the knee below 1.0");
    }

    #[test]
    fn bisection_reports_none_when_floor_saturates() {
        let mut exp = quick();
        exp.sim.queue_limit = 0; // nothing is sustainable
        assert!(find_saturation(&exp, 0.3, 0.9, 3).unwrap().is_none());
    }
}
