//! Declarative scenarios: topology + workload + faults/chaos + budgets +
//! expectations, compiled onto the campaign runner and judged into
//! structured verdicts.
//!
//! A [`Scenario`] is everything one evaluation story needs, as *data*:
//!
//! * the network shape (a [`NetworkSpec`] and [`Geometry`]),
//! * a workload — Poisson offered loads or a deterministic message
//!   script,
//! * scheduled faults: an explicit [`FaultPlan`] and/or a seeded
//!   [`ChaosSchedule`] (restart-style transient storms),
//! * engine settings including [`minnet_sim::RunBudget`] and the
//!   no-progress watchdog,
//! * and **expectations** — the SLOs the run must meet:
//!   [`ScenarioBuilder::expect_sustainable`],
//!   [`ScenarioBuilder::expect_delivery`],
//!   [`ScenarioBuilder::expect_p99_latency`],
//!   [`ScenarioBuilder::expect_no_stall`], …
//!
//! Scenarios come from Rust (the [`ScenarioBuilder`]) or from `.scn`
//! files ([`Scenario::parse`] / [`Scenario::load`]) — a line-oriented
//! `key = value` format documented in `EXPERIMENTS.md` and exemplified
//! by the `scenarios/` library at the repository root.
//!
//! Running a scenario ([`Scenario::run`]) reuses the campaign machinery
//! wholesale: each load (or the script) is one task under
//! `run_outcomes`, so panic isolation, deterministic retries, and
//! config-hash-keyed JSONL checkpoint/resume all come for free. The
//! result is a [`Verdict`]: pass/fail/partial with one [`CheckResult`]
//! per expectation (each carrying a human-readable reason), per-point
//! outcomes, and — when the watchdog fired — the structured
//! [`StallDiagnostic`].
//!
//! Determinism: a baseline scenario is bit-deterministic by the engine's
//! contract; a chaos scenario stays deterministic because the storm is
//! expanded from `mix(scenario seed, CHAOS_SALT)` and nothing else.
//! Verdict reports contain no wall-clock data, so
//! [`verdict_report_json`] is byte-identical across repeated runs and
//! thread counts (pinned by the workspace e2e tests).

use crate::campaign::{
    config_hash, esc, retry_seed, run_outcomes, CampaignPolicy, Checkpoint, PointOutcome,
};
use crate::experiment::Experiment;
use crate::spec::NetworkSpec;
use crate::sweep::mix;
use minnet_sim::{
    ChaosSchedule, ChaosTarget, EngineConfig, RunBudget, Script, ScriptedMsg, SimError,
    SimReport, StallDiagnostic,
};
use minnet_topology::{Fault, FaultPlan, FaultTarget, Geometry, UnidirKind};
use minnet_traffic::{Clustering, MessageSizeDist, TrafficPattern};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Salt mixed into the scenario seed to derive the chaos-expansion seed,
/// so the storm draw is decorrelated from the engine's own RNG streams.
const CHAOS_SALT: u64 = 0x0063_6861_6f73; // "chaos"

/// The overall outcome of a scenario (and the outcome it *expects* —
/// a watchdog-trip scenario declares `expected_verdict = fail`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum VerdictStatus {
    /// Every expectation held and every point completed.
    Pass,
    /// Nothing failed outright, but some data is missing or truncated
    /// (budget-cut points without `allow_partial`, or no completed run
    /// to evaluate a check against).
    Partial,
    /// An expectation was violated or a point failed.
    Fail,
}

impl VerdictStatus {
    /// Lower-case name as it appears in verdict JSON and scenario files.
    pub fn as_str(&self) -> &'static str {
        match self {
            VerdictStatus::Pass => "pass",
            VerdictStatus::Partial => "partial",
            VerdictStatus::Fail => "fail",
        }
    }
}

/// How one expectation fared.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckStatus {
    /// The expectation held on every evaluable point.
    Passed,
    /// The expectation was violated; the check's detail names where.
    Failed,
    /// The expectation could not be evaluated (no completed run).
    Skipped,
}

impl CheckStatus {
    /// Lower-case name as it appears in verdict JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            CheckStatus::Passed => "passed",
            CheckStatus::Failed => "failed",
            CheckStatus::Skipped => "skipped",
        }
    }
}

/// One evaluated expectation inside a [`Verdict`].
#[derive(Clone, Debug)]
pub struct CheckResult {
    /// What was expected, e.g. `delivery >= 0.95`.
    pub what: String,
    /// How it fared.
    pub status: CheckStatus,
    /// Why — empty for a clean pass, otherwise the offending points and
    /// values.
    pub detail: String,
}

/// One task of a scenario run (a load point, or the script) with its
/// campaign outcome.
#[derive(Clone, Debug)]
pub struct ScenarioPoint {
    /// `load 0.3` or `script`.
    pub label: String,
    /// What the run produced (report, truncated report, or failure).
    pub outcome: PointOutcome,
    /// Attempts spent (1 = no retry was needed).
    pub attempts: u32,
}

/// The structured result of [`Scenario::run`]: status, per-expectation
/// checks with reasons, per-point outcomes, and the stall diagnostic
/// when a watchdog fired.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// The scenario's name.
    pub scenario: String,
    /// Overall outcome.
    pub status: VerdictStatus,
    /// The outcome the scenario declared it expects (default pass).
    pub expected: VerdictStatus,
    /// One entry per declared expectation, plus the implicit
    /// "all points completed" check.
    pub checks: Vec<CheckResult>,
    /// Per-task outcomes, in task order.
    pub points: Vec<ScenarioPoint>,
    /// The first stall diagnostic any task's watchdog produced (kept
    /// even when a retry later succeeded — a stall *happened*).
    pub stall: Option<Box<StallDiagnostic>>,
}

impl Verdict {
    /// Whether the actual status matches the declared expectation — the
    /// CLI's exit criterion: a watchdog-trip scenario that fails as
    /// declared is a *successful* run of the scenario library.
    pub fn as_expected(&self) -> bool {
        self.status == self.expected
    }
}

impl std::fmt::Display for Verdict {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} {}",
            self.status.as_str().to_uppercase(),
            self.scenario
        )?;
        if self.expected != VerdictStatus::Pass {
            write!(f, " (expected {})", self.expected.as_str())?;
        }
        for c in &self.checks {
            let mark = match c.status {
                CheckStatus::Passed => "ok",
                CheckStatus::Failed => "FAIL",
                CheckStatus::Skipped => "skip",
            };
            write!(f, "\n  [{mark}] {}", c.what)?;
            if !c.detail.is_empty() {
                write!(f, ": {}", c.detail)?;
            }
        }
        for p in &self.points {
            if let PointOutcome::Failed { reason } = &p.outcome {
                write!(f, "\n  {} failed ({} attempts): {reason}", p.label, p.attempts)?;
            }
        }
        if let Some(d) = &self.stall {
            for line in d.detail().lines() {
                write!(f, "\n  | {line}")?;
            }
        }
        Ok(())
    }
}

/// The success criteria a scenario evaluates its reports against.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Expectations {
    /// `Some(true)`: every point must be sustainable (the paper's queue
    /// criterion); `Some(false)`: every point must be saturated.
    pub sustainable: Option<bool>,
    /// Minimum delivered/generated fraction per point.
    pub delivery: Option<f64>,
    /// Maximum p99 latency in cycles per point.
    pub p99_latency: Option<u64>,
    /// No task may trip the no-progress watchdog.
    pub no_stall: bool,
    /// No point may abort packets mid-flight.
    pub no_aborts: bool,
    /// No point may refuse packets at injection as undeliverable.
    pub no_refusals: bool,
    /// Budget-cut (partial) reports count as evaluable data and do not
    /// demote the verdict.
    pub allow_partial: bool,
}

impl Expectations {
    /// Whether any expectation is declared at all (a scenario without
    /// one is rejected at build time).
    fn any(&self) -> bool {
        self.sustainable.is_some()
            || self.delivery.is_some()
            || self.p99_latency.is_some()
            || self.no_stall
            || self.no_aborts
            || self.no_refusals
    }
}

/// A fully validated, runnable scenario. Construct with
/// [`Scenario::builder`] or parse from a `.scn` file with
/// [`Scenario::load`].
#[derive(Clone, Debug)]
pub struct Scenario {
    name: String,
    description: String,
    exp: Experiment,
    loads: Vec<f64>,
    script: Vec<ScriptedMsg>,
    faults: FaultPlan,
    chaos: Option<ChaosSchedule>,
    expect: Expectations,
    expected: VerdictStatus,
    chaos_opt_in: bool,
}

impl Scenario {
    /// Start declaring a scenario named `name`.
    pub fn builder(name: &str) -> ScenarioBuilder {
        ScenarioBuilder::new(name)
    }

    /// The scenario's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The scenario's one-line description (may be empty).
    pub fn description(&self) -> &str {
        &self.description
    }

    /// Whether this scenario is chaos-gated: skipped by default, run
    /// only when chaos is explicitly included (`--chaos`).
    pub fn is_chaos_opt_in(&self) -> bool {
        self.chaos_opt_in
    }

    /// The verdict status this scenario declares it expects.
    pub fn expected_verdict(&self) -> VerdictStatus {
        self.expected
    }

    /// The underlying experiment (network, workload family, engine
    /// config including seed and budget).
    pub fn experiment(&self) -> &Experiment {
        &self.exp
    }

    /// The declared expectations.
    pub fn expectations(&self) -> &Expectations {
        &self.expect
    }

    /// Override the scenario's declared run budget from outside — the
    /// CLI's `--budget-cycles` / `--budget-ms` passthrough. A nonzero
    /// field replaces the declared value; a zero field keeps it, so a
    /// caller can cap cycles without disturbing a wall budget (or vice
    /// versa).
    pub fn override_budget(&mut self, budget: RunBudget) {
        if budget.max_cycles > 0 {
            self.exp.sim.budget.max_cycles = budget.max_cycles;
        }
        if budget.max_wall_ms > 0 {
            self.exp.sim.budget.max_wall_ms = budget.max_wall_ms;
        }
    }

    /// Run the scenario and judge it into a [`Verdict`].
    ///
    /// Each Poisson load (or the script) is one campaign task: panics
    /// are isolated per task, failures retried per `policy.retries`
    /// with decorrelated seeds, and finished tasks appended to the
    /// policy's checkpoint for resume. Task `i` runs with seed
    /// `mix(scenario seed, i + 1)`; the chaos storm (if any) expands
    /// from `mix(scenario seed, CHAOS_SALT)` — all randomness flows
    /// from the scenario seed, so verdicts are thread-count invariant
    /// and bitwise reproducible.
    ///
    /// One caveat on resume: a [`StallDiagnostic`] is captured through a
    /// side channel during the run and is not persisted to checkpoints —
    /// a task preloaded from a checkpoint keeps its `Failed` reason
    /// string (and the verdict status), but `Verdict::stall` and the
    /// `no stall` check reflect only the tasks that actually ran in
    /// this process.
    ///
    /// # Errors
    ///
    /// Reports invalid configurations (network, workload, fault plan,
    /// chaos schedule) and checkpoint I/O or mismatch problems. An
    /// expectation *violation* is not an error — it is a `Fail`
    /// verdict.
    pub fn run(&self, threads: usize, policy: &CampaignPolicy) -> Result<Verdict, String> {
        let fail = |e: String| format!("scenario {}: {e}", self.name);
        let compiled = self.exp.compile().map_err(&fail)?;

        // Explicit faults plus the expanded chaos storm, compiled once
        // into per-epoch masked tables shared by every task.
        let mut plan = self.faults.clone();
        if let Some(chaos) = &self.chaos {
            let storm = chaos
                .compile_plan(
                    compiled.graph(),
                    self.exp.network.vcs(),
                    mix(self.exp.sim.seed, CHAOS_SALT),
                )
                .map_err(|e| fail(e.to_string()))?;
            for f in storm.faults() {
                plan.push(*f);
            }
        }
        let faults = if plan.is_empty() {
            None
        } else {
            Some(
                compiled
                    .network()
                    .compile_faults(&plan)
                    .map_err(|e| fail(e.to_string()))?,
            )
        };

        let script = if self.script.is_empty() {
            None
        } else {
            Some(Script::compile(self.exp.geometry, &self.script).map_err(|e| fail(e.to_string()))?)
        };
        let tasks = if script.is_some() { 1 } else { self.loads.len() };

        let hash = config_hash(
            "scenario",
            &self.exp,
            &format!(
                "name={};loads={:?};script={:?};plan={:?};expect={:?}",
                self.name, self.loads, self.script, plan, self.expect
            ),
            policy.retries,
        );
        let mut ckpt = Checkpoint::open(policy, "scenario", hash, tasks).map_err(&fail)?;
        let preloaded = ckpt.preloaded(tasks);

        // Watchdog side channel: `run_outcomes` stringifies non-budget
        // errors into `Failed { reason }`, but the verdict must carry
        // the *structured* diagnostic — so the closure stashes it per
        // task before returning the error.
        let stalls: Mutex<Vec<Option<Box<StallDiagnostic>>>> = Mutex::new(vec![None; tasks]);
        let base = self.exp.sim.seed;
        let outcomes = run_outcomes(
            threads,
            policy.retries,
            preloaded,
            |task, attempts, outcome| ckpt.append(task, attempts, outcome),
            |task, attempt, st| {
                let seed = retry_seed(mix(base, task as u64 + 1), attempt);
                let res = match &script {
                    Some(s) => compiled.network().run_script_faulted(s, faults.as_ref(), seed, st),
                    None => {
                        let w = compiled
                            .template()
                            .workload_at(self.loads[task])
                            .map_err(SimError::Config)?;
                        compiled.network().run_poisson_faulted(&w, faults.as_ref(), seed, st)
                    }
                };
                match res {
                    Ok(mut r) => {
                        // Delivery records and traces are not needed for
                        // judging and are not checkpointable; strip them
                        // so scripted scenarios checkpoint like Poisson
                        // ones.
                        r.deliveries = None;
                        r.trace = None;
                        Ok(r)
                    }
                    Err(SimError::BudgetExceeded(mut p)) => {
                        p.report.deliveries = None;
                        p.report.trace = None;
                        Err(SimError::BudgetExceeded(p))
                    }
                    Err(SimError::NoProgress(d)) => {
                        let mut slot = stalls.lock().expect("stall channel poisoned");
                        slot[task] = Some(d.clone());
                        Err(SimError::NoProgress(d))
                    }
                    Err(e) => Err(e),
                }
            },
        )
        .map_err(&fail)?;
        let stalls = stalls.into_inner().expect("stall channel poisoned");
        Ok(self.judge(outcomes, stalls))
    }

    /// The per-task labels (`load 0.3` … or `script`).
    fn labels(&self) -> Vec<String> {
        if self.script.is_empty() {
            self.loads.iter().map(|l| format!("load {l}")).collect()
        } else {
            vec!["script".to_string()]
        }
    }

    /// Evaluate expectations over the outcomes into a [`Verdict`].
    fn judge(
        &self,
        outcomes: Vec<(PointOutcome, u32)>,
        stalls: Vec<Option<Box<StallDiagnostic>>>,
    ) -> Verdict {
        let labels = self.labels();
        let points: Vec<ScenarioPoint> = outcomes
            .into_iter()
            .zip(&labels)
            .map(|((outcome, attempts), label)| ScenarioPoint {
                label: label.clone(),
                outcome,
                attempts,
            })
            .collect();

        // A point is evaluable when it carries a report the scenario is
        // willing to judge: completed runs always, truncated runs only
        // under `allow_partial`.
        let evaluable: Vec<(&str, &SimReport)> = points
            .iter()
            .filter_map(|p| match &p.outcome {
                PointOutcome::Ok(r) => Some((p.label.as_str(), r)),
                PointOutcome::Partial { report, .. } if self.expect.allow_partial => {
                    Some((p.label.as_str(), report))
                }
                _ => None,
            })
            .collect();

        let mut checks = Vec::new();
        // A value check over every evaluable report: `violation` returns
        // a reason when the report breaks the expectation.
        let mut value_check = |what: String,
                               violation: &dyn Fn(&SimReport) -> Option<String>| {
            let failing: Vec<String> = evaluable
                .iter()
                .filter_map(|(label, r)| violation(r).map(|why| format!("{label}: {why}")))
                .collect();
            checks.push(if evaluable.is_empty() {
                CheckResult {
                    what,
                    status: CheckStatus::Skipped,
                    detail: "no completed run to evaluate".to_string(),
                }
            } else if failing.is_empty() {
                CheckResult {
                    what,
                    status: CheckStatus::Passed,
                    detail: String::new(),
                }
            } else {
                CheckResult {
                    what,
                    status: CheckStatus::Failed,
                    detail: failing.join("; "),
                }
            });
        };

        match self.expect.sustainable {
            Some(true) => value_check("sustainable".to_string(), &|r| {
                (!r.sustainable).then(|| {
                    format!("saturated (max queue {} over the limit)", r.max_queue)
                })
            }),
            Some(false) => value_check("saturated".to_string(), &|r| {
                r.sustainable.then(|| "still sustainable".to_string())
            }),
            None => {}
        }
        if let Some(frac) = self.expect.delivery {
            value_check(format!("delivery >= {frac}"), &|r| {
                let got = if r.generated_packets == 0 {
                    1.0
                } else {
                    r.delivered_packets as f64 / r.generated_packets as f64
                };
                (got < frac).then(|| {
                    format!(
                        "delivered {}/{} = {:.4}",
                        r.delivered_packets, r.generated_packets, got
                    )
                })
            });
        }
        if let Some(limit) = self.expect.p99_latency {
            value_check(format!("p99 latency <= {limit} cycles"), &|r| {
                (r.p99_latency_cycles > limit)
                    .then(|| format!("p99 {} cycles", r.p99_latency_cycles))
            });
        }
        if self.expect.no_aborts {
            value_check("no aborted packets".to_string(), &|r| {
                (r.aborted_packets > 0).then(|| format!("{} aborted", r.aborted_packets))
            });
        }
        if self.expect.no_refusals {
            value_check("no undeliverable refusals".to_string(), &|r| {
                (r.undeliverable_packets > 0)
                    .then(|| format!("{} refused", r.undeliverable_packets))
            });
        }
        if self.expect.no_stall {
            // Judged from the side channel, not the reports: a stall on
            // any attempt counts even if a retry later completed.
            let failing: Vec<String> = stalls
                .iter()
                .zip(&labels)
                .filter_map(|(s, label)| {
                    s.as_ref().map(|d| format!("{label}: {d}"))
                })
                .collect();
            checks.push(if failing.is_empty() {
                CheckResult {
                    what: "no stall".to_string(),
                    status: CheckStatus::Passed,
                    detail: String::new(),
                }
            } else {
                CheckResult {
                    what: "no stall".to_string(),
                    status: CheckStatus::Failed,
                    detail: failing.join("; "),
                }
            });
        }
        // The implicit completion check: failed points sink a scenario
        // even without a declared expectation on them.
        {
            let failing: Vec<String> = points
                .iter()
                .filter_map(|p| match &p.outcome {
                    PointOutcome::Failed { reason } => Some(format!("{}: {reason}", p.label)),
                    _ => None,
                })
                .collect();
            checks.push(if failing.is_empty() {
                CheckResult {
                    what: "all points completed".to_string(),
                    status: CheckStatus::Passed,
                    detail: String::new(),
                }
            } else {
                CheckResult {
                    what: "all points completed".to_string(),
                    status: CheckStatus::Failed,
                    detail: failing.join("; "),
                }
            });
        }

        let any_failed_check = checks.iter().any(|c| c.status == CheckStatus::Failed);
        let any_skipped_check = checks.iter().any(|c| c.status == CheckStatus::Skipped);
        let unjudged_partial = !self.expect.allow_partial
            && points.iter().any(|p| p.outcome.is_partial());
        let status = if any_failed_check {
            VerdictStatus::Fail
        } else if any_skipped_check || unjudged_partial {
            VerdictStatus::Partial
        } else {
            VerdictStatus::Pass
        };
        let stall = stalls.into_iter().flatten().next();
        Verdict {
            scenario: self.name.clone(),
            status,
            expected: self.expected,
            checks,
            points,
            stall,
        }
    }
}

/// Fluent construction of a [`Scenario`]; see the module docs. Defaults:
/// the paper's 64-node geometry, cube TMIN, uniform traffic, paper
/// message sizes, default engine config, no faults, no chaos, expected
/// verdict `pass`.
#[derive(Clone, Debug)]
pub struct ScenarioBuilder {
    name: String,
    description: String,
    geometry: Geometry,
    network: NetworkSpec,
    pattern: TrafficPattern,
    clustering: Clustering,
    sizes: MessageSizeDist,
    sim: EngineConfig,
    loads: Vec<f64>,
    script: Vec<ScriptedMsg>,
    faults: FaultPlan,
    chaos: Option<ChaosSchedule>,
    expect: Expectations,
    expected: VerdictStatus,
    chaos_opt_in: bool,
}

impl ScenarioBuilder {
    fn new(name: &str) -> ScenarioBuilder {
        ScenarioBuilder {
            name: name.to_string(),
            description: String::new(),
            geometry: Geometry::new(4, 3),
            network: NetworkSpec::tmin(),
            pattern: TrafficPattern::Uniform,
            clustering: Clustering::Global,
            sizes: MessageSizeDist::PAPER,
            sim: EngineConfig::default(),
            loads: Vec::new(),
            script: Vec::new(),
            faults: FaultPlan::new(),
            chaos: None,
            expect: Expectations::default(),
            expected: VerdictStatus::Pass,
            chaos_opt_in: false,
        }
    }

    /// One-line description shown by `minnet scenario list`.
    #[must_use]
    pub fn description(mut self, d: &str) -> Self {
        self.description = d.to_string();
        self
    }

    /// Network geometry: `k`×`k` switches, `n` stages (`k^n` nodes).
    #[must_use]
    pub fn geometry(mut self, k: u32, n: u32) -> Self {
        self.geometry = Geometry::new(k, n);
        self
    }

    /// Which of the four designs to simulate.
    #[must_use]
    pub fn network(mut self, spec: NetworkSpec) -> Self {
        self.network = spec;
        self
    }

    /// Destination pattern (uniform, hotspot, shuffle, butterfly).
    #[must_use]
    pub fn pattern(mut self, p: TrafficPattern) -> Self {
        self.pattern = p;
        self
    }

    /// Node clustering for partitioned workloads.
    #[must_use]
    pub fn clustering(mut self, c: Clustering) -> Self {
        self.clustering = c;
        self
    }

    /// Message size distribution.
    #[must_use]
    pub fn sizes(mut self, s: MessageSizeDist) -> Self {
        self.sizes = s;
        self
    }

    /// The scenario seed — the *only* source of randomness, including
    /// chaos expansion.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.sim.seed = seed;
        self
    }

    /// Warmup cycles excluded from measurement.
    #[must_use]
    pub fn warmup(mut self, cycles: u64) -> Self {
        self.sim.warmup = cycles;
        self
    }

    /// Measured cycles.
    #[must_use]
    pub fn measure(mut self, cycles: u64) -> Self {
        self.sim.measure = cycles;
        self
    }

    /// Source-queue limit for the sustainability criterion.
    #[must_use]
    pub fn queue_limit(mut self, limit: usize) -> Self {
        self.sim.queue_limit = limit;
        self
    }

    /// Per-lane flit buffer depth.
    #[must_use]
    pub fn buffer_depth(mut self, depth: u16) -> Self {
        self.sim.buffer_depth = depth;
        self
    }

    /// No-progress watchdog window in cycles (0 = off).
    #[must_use]
    pub fn watchdog_window(mut self, window: u64) -> Self {
        self.sim.watchdog_window = window;
        self
    }

    /// Whether worms wedged by a fault are aborted (engine default) or
    /// left holding their lanes — `false` is the watchdog's test knob.
    #[must_use]
    pub fn fault_abort(mut self, abort: bool) -> Self {
        self.sim.fault_abort = abort;
        self
    }

    /// Deterministic cycle budget per run (0 = off).
    #[must_use]
    pub fn budget_cycles(mut self, cycles: u64) -> Self {
        self.sim.budget.max_cycles = cycles;
        self
    }

    /// Wall-clock budget per run in milliseconds (0 = off).
    #[must_use]
    pub fn budget_ms(mut self, ms: u64) -> Self {
        self.sim.budget.max_wall_ms = ms;
        self
    }

    /// Add one Poisson offered-load point (one campaign task).
    #[must_use]
    pub fn load(mut self, load: f64) -> Self {
        self.loads.push(load);
        self
    }

    /// Add several Poisson offered-load points.
    #[must_use]
    pub fn loads(mut self, loads: &[f64]) -> Self {
        self.loads.extend_from_slice(loads);
        self
    }

    /// Add one scripted message (scripted scenarios run as one task).
    #[must_use]
    pub fn message(mut self, time: u64, src: u32, dst: u32, len: u32) -> Self {
        self.script.push(ScriptedMsg { time, src, dst, len });
        self
    }

    /// Add one explicit scheduled fault.
    #[must_use]
    pub fn fault(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Attach a chaos schedule (expanded from the scenario seed).
    #[must_use]
    pub fn chaos(mut self, schedule: ChaosSchedule) -> Self {
        self.chaos = Some(schedule);
        self
    }

    /// Expect every point to be sustainable (the paper's criterion).
    #[must_use]
    pub fn expect_sustainable(mut self) -> Self {
        self.expect.sustainable = Some(true);
        self
    }

    /// Expect every point to be saturated (a saturation probe).
    #[must_use]
    pub fn expect_saturated(mut self) -> Self {
        self.expect.sustainable = Some(false);
        self
    }

    /// Expect at least this delivered/generated fraction per point.
    #[must_use]
    pub fn expect_delivery(mut self, frac: f64) -> Self {
        self.expect.delivery = Some(frac);
        self
    }

    /// Expect the p99 latency to stay at or below `cycles` per point.
    #[must_use]
    pub fn expect_p99_latency(mut self, cycles: u64) -> Self {
        self.expect.p99_latency = Some(cycles);
        self
    }

    /// Expect no task to trip the no-progress watchdog.
    #[must_use]
    pub fn expect_no_stall(mut self) -> Self {
        self.expect.no_stall = true;
        self
    }

    /// Expect no packets aborted mid-flight by faults.
    #[must_use]
    pub fn expect_no_aborts(mut self) -> Self {
        self.expect.no_aborts = true;
        self
    }

    /// Expect no packets refused at injection as undeliverable.
    #[must_use]
    pub fn expect_no_refusals(mut self) -> Self {
        self.expect.no_refusals = true;
        self
    }

    /// Let budget-cut (partial) reports count as evaluable data.
    #[must_use]
    pub fn allow_partial(mut self) -> Self {
        self.expect.allow_partial = true;
        self
    }

    /// Declare that this scenario is *supposed* to fail (e.g. a
    /// watchdog-trip fixture): the CLI treats a matching `Fail` verdict
    /// as success.
    #[must_use]
    pub fn expect_failure(mut self) -> Self {
        self.expected = VerdictStatus::Fail;
        self
    }

    /// Gate this scenario behind explicit chaos opt-in (`--chaos`).
    #[must_use]
    pub fn chaos_opt_in(mut self) -> Self {
        self.chaos_opt_in = true;
        self
    }

    /// Validate and freeze the scenario.
    ///
    /// # Errors
    ///
    /// Reports an invalid name, a missing or doubled workload, empty or
    /// out-of-range loads, a missing expectation, degenerate fault
    /// windows, and invalid network/chaos parameters.
    pub fn build(self) -> Result<Scenario, String> {
        let fail = |e: String| format!("scenario {}: {e}", self.name);
        if self.name.is_empty()
            || !self
                .name
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
        {
            return Err(format!(
                "scenario name {:?} must be non-empty [A-Za-z0-9_-] (it names \
                 checkpoint and report entries)",
                self.name
            ));
        }
        self.network.validate().map_err(&fail)?;
        match (self.loads.is_empty(), self.script.is_empty()) {
            (true, true) => {
                return Err(fail("declare a workload: loads = … or message = …".into()))
            }
            (false, false) => {
                return Err(fail(
                    "declare either Poisson loads or a script, not both".into(),
                ))
            }
            _ => {}
        }
        for &l in &self.loads {
            if !(l > 0.0 && l <= 1.0 && l.is_finite()) {
                return Err(fail(format!(
                    "load {l} is outside (0, 1] (1.0 = the one-port injection bound)"
                )));
            }
        }
        if !self.expect.any() {
            return Err(fail(
                "declare at least one expectation (expect.sustainable, \
                 expect.delivery, expect.p99_latency, expect.no_stall, …)"
                    .into(),
            ));
        }
        // Window sanity that needs no network; out-of-range targets are
        // caught at run time against the built graph.
        for (i, f) in self.faults.faults().iter().enumerate() {
            if let Some(r) = f.repair {
                if r <= f.onset {
                    return Err(fail(format!(
                        "fault {i}: repair cycle {r} is not after onset {} \
                         (empty fault window)",
                        f.onset
                    )));
                }
            }
        }
        if let Some(chaos) = &self.chaos {
            chaos.validate().map_err(|e| fail(e.to_string()))?;
        }
        let exp = Experiment {
            geometry: self.geometry,
            network: self.network,
            pattern: self.pattern,
            clustering: self.clustering,
            rates: None,
            sizes: self.sizes,
            sim: EngineConfig {
                vcs: self.network.vcs(),
                ..self.sim
            },
        };
        Ok(Scenario {
            name: self.name,
            description: self.description,
            exp,
            loads: self.loads,
            script: self.script,
            faults: self.faults,
            chaos: self.chaos,
            expect: self.expect,
            expected: self.expected,
            chaos_opt_in: self.chaos_opt_in,
        })
    }
}

// ---- scenario file format --------------------------------------------

/// Accept `true/false` and `on/off`.
fn parse_flag(v: &str) -> Option<bool> {
    match v {
        "true" | "on" | "yes" => Some(true),
        "false" | "off" | "no" => Some(false),
        _ => None,
    }
}

impl Scenario {
    /// Parse the scenario file format: one `key = value` per line, `#`
    /// comments, blank lines ignored. `origin` labels error messages
    /// (usually the file name) and, stemmed, provides the default
    /// `name`. The format is documented in `EXPERIMENTS.md`; the
    /// `scenarios/` library is the living reference.
    ///
    /// # Errors
    ///
    /// Reports unknown keys, malformed values, and everything
    /// [`ScenarioBuilder::build`] rejects — all labeled
    /// `origin:line`.
    pub fn parse(text: &str, origin: &str) -> Result<Scenario, String> {
        let default_name = Path::new(origin)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut b = ScenarioBuilder::new(&default_name);
        let mut wiring = UnidirKind::Cube;
        let mut network_kind = "tmin".to_string();
        let mut dilation: u8 = 2;
        let mut vcs: u8 = 2;
        let mut chaos = ChaosSchedule {
            target: ChaosTarget::Channel,
            count: 1,
            min_onset: 0,
            max_onset: 0,
            duration: 0,
            cooldown: 0,
            rounds: 1,
        };
        let mut has_chaos = false;

        for (ln, raw) in text.lines().enumerate() {
            let ln = ln + 1;
            let at = |msg: String| format!("{origin}:{ln}: {msg}");
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(at(format!("expected `key = value`, got {line:?}")));
            };
            let (key, value) = (key.trim(), value.trim());
            let num =
                |v: &str| -> Result<u64, String> { v.parse().map_err(|e| at(format!("{e}"))) };
            let flag = |v: &str| -> Result<bool, String> {
                parse_flag(v).ok_or_else(|| at(format!("expected true/false, got {v:?}")))
            };
            match key {
                "name" => b.name = value.to_string(),
                "description" => b.description = value.to_string(),
                "network" => network_kind = value.to_string(),
                "wiring" => {
                    wiring = match value {
                        "cube" => UnidirKind::Cube,
                        "butterfly" => UnidirKind::Butterfly,
                        "omega" => UnidirKind::Omega,
                        "baseline" => UnidirKind::Baseline,
                        _ => return Err(at(format!("unknown wiring {value:?}"))),
                    }
                }
                "dilation" => dilation = num(value)? as u8,
                "vcs" => vcs = num(value)? as u8,
                "k" => b.geometry = Geometry::new(num(value)? as u32, b.geometry.n()),
                "n" => b.geometry = Geometry::new(b.geometry.k(), num(value)? as u32),
                "pattern" => {
                    b.pattern = if value == "uniform" {
                        TrafficPattern::Uniform
                    } else if value == "shuffle" {
                        TrafficPattern::SHUFFLE
                    } else if let Some(x) = value.strip_prefix("hotspot:") {
                        TrafficPattern::HotSpot {
                            extra: x.parse().map_err(|e| at(format!("hotspot: {e}")))?,
                        }
                    } else if let Some(i) = value.strip_prefix("butterfly:") {
                        TrafficPattern::butterfly(
                            i.parse().map_err(|e| at(format!("butterfly: {e}")))?,
                        )
                    } else {
                        return Err(at(format!("unknown pattern {value:?}")));
                    }
                }
                "sizes" => {
                    b.sizes = if value == "paper" {
                        MessageSizeDist::PAPER
                    } else if let Some(len) = value.strip_prefix("fixed:") {
                        MessageSizeDist::Fixed(
                            len.parse().map_err(|e| at(format!("fixed: {e}")))?,
                        )
                    } else if let Some(rest) = value.strip_prefix("bimodal:") {
                        let parts: Vec<&str> = rest.split(',').collect();
                        if parts.len() != 3 {
                            return Err(at("bimodal needs short,long,p_short".to_string()));
                        }
                        MessageSizeDist::Bimodal {
                            short: parts[0].parse().map_err(|e| at(format!("{e}")))?,
                            long: parts[1].parse().map_err(|e| at(format!("{e}")))?,
                            p_short: parts[2].parse().map_err(|e| at(format!("{e}")))?,
                        }
                    } else {
                        return Err(at(format!("unknown sizes {value:?}")));
                    }
                }
                "loads" => {
                    for part in value.split(',') {
                        let l: f64 = part
                            .trim()
                            .parse()
                            .map_err(|e| at(format!("loads: {e}")))?;
                        b.loads.push(l);
                    }
                }
                "message" => {
                    let parts: Vec<&str> = value.split_whitespace().collect();
                    if parts.len() != 4 {
                        return Err(at(format!(
                            "message needs `time src dst len`, got {value:?}"
                        )));
                    }
                    b.script.push(ScriptedMsg {
                        time: num(parts[0])?,
                        src: num(parts[1])? as u32,
                        dst: num(parts[2])? as u32,
                        len: num(parts[3])? as u32,
                    });
                }
                "seed" => b.sim.seed = num(value)?,
                "warmup" => b.sim.warmup = num(value)?,
                "measure" => b.sim.measure = num(value)?,
                "queue_limit" => b.sim.queue_limit = num(value)? as usize,
                "buffer_depth" => b.sim.buffer_depth = num(value)? as u16,
                "watchdog_window" => b.sim.watchdog_window = num(value)?,
                "fault_abort" => b.sim.fault_abort = flag(value)?,
                "budget_cycles" => b.sim.budget.max_cycles = num(value)?,
                "budget_ms" => b.sim.budget.max_wall_ms = num(value)?,
                "fault" => {
                    let (target, window) = match value.split_once('@') {
                        Some((t, w)) => (t.trim(), Some(w.trim())),
                        None => (value, None),
                    };
                    let parts: Vec<&str> = target.split_whitespace().collect();
                    if parts.len() != 2 {
                        return Err(at(format!(
                            "fault target needs `channel N`, `lane C.V`, or `switch N`, \
                             got {target:?}"
                        )));
                    }
                    let target = match parts[0] {
                        "channel" => FaultTarget::Channel(num(parts[1])? as u32),
                        "switch" => FaultTarget::Switch(num(parts[1])? as u32),
                        "lane" => {
                            let Some((c, v)) = parts[1].split_once('.') else {
                                return Err(at(format!(
                                    "lane target needs `lane <channel>.<vc>`, got {:?}",
                                    parts[1]
                                )));
                            };
                            FaultTarget::Lane {
                                channel: num(c)? as u32,
                                vc: num(v)? as u8,
                            }
                        }
                        other => return Err(at(format!("unknown fault class {other:?}"))),
                    };
                    let fault = match window {
                        None => Fault::permanent(target),
                        Some(w) => {
                            let Some((onset, repair)) = w.split_once("..") else {
                                return Err(at(format!(
                                    "fault window needs `onset..repair` (repair empty or \
                                     `inf` = permanent), got {w:?}"
                                )));
                            };
                            let onset = num(onset.trim())?;
                            match repair.trim() {
                                "" | "inf" => Fault {
                                    target,
                                    onset,
                                    repair: None,
                                },
                                r => Fault::transient(target, onset, num(r)?),
                            }
                        }
                    };
                    b.faults.push(fault);
                }
                "chaos.target" => {
                    has_chaos = true;
                    chaos.target = match value {
                        "channel" => ChaosTarget::Channel,
                        "lane" => ChaosTarget::Lane,
                        "switch" => ChaosTarget::Switch,
                        _ => return Err(at(format!("unknown chaos target {value:?}"))),
                    };
                }
                "chaos.count" => {
                    has_chaos = true;
                    chaos.count = num(value)? as usize;
                }
                "chaos.min_onset" => {
                    has_chaos = true;
                    chaos.min_onset = num(value)?;
                }
                "chaos.max_onset" => {
                    has_chaos = true;
                    chaos.max_onset = num(value)?;
                }
                "chaos.duration" => {
                    has_chaos = true;
                    chaos.duration = num(value)?;
                }
                "chaos.cooldown" => {
                    has_chaos = true;
                    chaos.cooldown = num(value)?;
                }
                "chaos.rounds" => {
                    has_chaos = true;
                    chaos.rounds = num(value)? as u32;
                }
                "expect.sustainable" => b.expect.sustainable = Some(flag(value)?),
                "expect.delivery" => {
                    b.expect.delivery =
                        Some(value.parse().map_err(|e| at(format!("{e}")))?)
                }
                "expect.p99_latency" => b.expect.p99_latency = Some(num(value)?),
                "expect.no_stall" => b.expect.no_stall = flag(value)?,
                "expect.no_aborts" => b.expect.no_aborts = flag(value)?,
                "expect.no_refusals" => b.expect.no_refusals = flag(value)?,
                "expect.allow_partial" => b.expect.allow_partial = flag(value)?,
                "expected_verdict" => {
                    b.expected = match value {
                        "pass" => VerdictStatus::Pass,
                        "fail" => VerdictStatus::Fail,
                        _ => {
                            return Err(at(format!(
                                "expected_verdict must be pass or fail, got {value:?}"
                            )))
                        }
                    }
                }
                "chaos_opt_in" => b.chaos_opt_in = flag(value)?,
                other => return Err(at(format!("unknown key {other:?}"))),
            }
        }
        b.network = match network_kind.as_str() {
            "tmin" => NetworkSpec::Tmin(wiring),
            "dmin" => NetworkSpec::Dmin(wiring, dilation),
            "vmin" => NetworkSpec::Vmin(wiring, vcs),
            "bmin" => NetworkSpec::Bmin,
            other => return Err(format!("{origin}: unknown network {other:?}")),
        };
        if has_chaos {
            b.chaos = Some(chaos);
        }
        b.build().map_err(|e| format!("{origin}: {e}"))
    }

    /// [`Scenario::parse`] a file from disk.
    ///
    /// # Errors
    ///
    /// I/O problems plus everything `parse` rejects.
    pub fn load(path: &Path) -> Result<Scenario, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading {}: {e}", path.display()))?;
        Scenario::parse(&text, &path.display().to_string())
    }
}

// ---- scenario sets ---------------------------------------------------

/// The scenario files a path denotes: the file itself, or every `.scn`
/// directly inside a directory, sorted by file name so run order (and
/// the verdict report) is stable.
///
/// # Errors
///
/// I/O problems, and a directory containing no `.scn` files at all.
pub fn scenario_files(path: &Path) -> Result<Vec<PathBuf>, String> {
    if path.is_file() {
        return Ok(vec![path.to_path_buf()]);
    }
    let entries = std::fs::read_dir(path)
        .map_err(|e| format!("reading {}: {e}", path.display()))?;
    let mut files: Vec<PathBuf> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_file() && p.extension().is_some_and(|x| x == "scn"))
        .collect();
    if files.is_empty() {
        return Err(format!(
            "{}: no .scn scenario files found",
            path.display()
        ));
    }
    files.sort();
    Ok(files)
}

/// The verdicts of one scenario-library run, plus the chaos-gated
/// scenarios that were skipped.
#[derive(Clone, Debug)]
pub struct ScenarioSet {
    /// One verdict per executed scenario, in run order.
    pub verdicts: Vec<Verdict>,
    /// Names of chaos-gated scenarios skipped (chaos not included).
    pub skipped: Vec<String>,
}

impl ScenarioSet {
    /// Whether every executed scenario ended as it declared it would.
    pub fn all_as_expected(&self) -> bool {
        self.verdicts.iter().all(Verdict::as_expected)
    }
}

/// Load and run a list of scenario files in order. Chaos-gated
/// scenarios are skipped unless `include_chaos`; `checkpoint_dir`, when
/// given, checkpoints each scenario to `<dir>/<name>.ckpt` for resume.
///
/// # Errors
///
/// Load/parse failures and the infrastructure errors of
/// [`Scenario::run`] (a failed expectation is a `Fail` verdict, not an
/// error).
pub fn run_scenario_files(
    paths: &[PathBuf],
    threads: usize,
    retries: u32,
    include_chaos: bool,
    checkpoint_dir: Option<&Path>,
) -> Result<ScenarioSet, String> {
    run_scenario_files_with_budget(paths, threads, retries, include_chaos, checkpoint_dir, None)
}

/// [`run_scenario_files`] with an externally imposed run budget: when
/// `budget_override` is `Some`, each scenario's declared budget is
/// tightened via [`Scenario::override_budget`] before it runs (nonzero
/// fields replace, zero fields keep the declared value). This is the
/// CLI's `minnet scenario run --budget-cycles/--budget-ms` passthrough:
/// a whole library can be bounded without editing any `.scn` file.
///
/// # Errors
///
/// Same as [`run_scenario_files`].
pub fn run_scenario_files_with_budget(
    paths: &[PathBuf],
    threads: usize,
    retries: u32,
    include_chaos: bool,
    checkpoint_dir: Option<&Path>,
    budget_override: Option<RunBudget>,
) -> Result<ScenarioSet, String> {
    let mut verdicts = Vec::new();
    let mut skipped = Vec::new();
    for path in paths {
        let mut scenario = Scenario::load(path)?;
        if let Some(budget) = budget_override {
            scenario.override_budget(budget);
        }
        if scenario.is_chaos_opt_in() && !include_chaos {
            skipped.push(scenario.name().to_string());
            continue;
        }
        let policy = CampaignPolicy {
            retries,
            checkpoint: checkpoint_dir.map(|d| d.join(format!("{}.ckpt", scenario.name()))),
            require_existing: false,
        };
        verdicts.push(scenario.run(threads, &policy)?);
    }
    Ok(ScenarioSet { verdicts, skipped })
}

// ---- verdict JSON ----------------------------------------------------

/// One verdict as a JSON object. Contains no wall-clock data and no
/// raw floats (delivery appears as exact delivered/generated integers),
/// so repeated runs serialize byte-identically.
fn verdict_json(v: &Verdict) -> String {
    use std::fmt::Write;
    let mut s = format!(
        "{{\"name\":\"{}\",\"status\":\"{}\",\"expected\":\"{}\",\"as_expected\":{}",
        esc(&v.scenario),
        v.status.as_str(),
        v.expected.as_str(),
        v.as_expected()
    );
    s.push_str(",\"checks\":[");
    for (i, c) in v.checks.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"what\":\"{}\",\"status\":\"{}\",\"detail\":\"{}\"}}",
            esc(&c.what),
            c.status.as_str(),
            esc(&c.detail)
        );
    }
    s.push_str("],\"points\":[");
    for (i, p) in v.points.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"label\":\"{}\",\"outcome\":\"{}\",\"attempts\":{}",
            esc(&p.label),
            p.outcome.tag(),
            p.attempts
        );
        if let Some(r) = p.outcome.report() {
            let _ = write!(
                s,
                ",\"cycles\":{},\"generated\":{},\"delivered\":{},\"aborted\":{},\
                 \"refused\":{},\"p99\":{},\"max_queue\":{},\"sustainable\":{}",
                r.cycles,
                r.generated_packets,
                r.delivered_packets,
                r.aborted_packets,
                r.undeliverable_packets,
                r.p99_latency_cycles,
                r.max_queue,
                r.sustainable
            );
        }
        match &p.outcome {
            PointOutcome::Partial { reason, .. } | PointOutcome::Failed { reason } => {
                let _ = write!(s, ",\"reason\":\"{}\"", esc(reason));
            }
            PointOutcome::Ok(_) => {}
        }
        s.push('}');
    }
    s.push(']');
    if let Some(d) = &v.stall {
        let _ = write!(s, ",\"stall\":{{\"cycle\":{},\"window\":{}", d.cycle, d.window);
        s.push_str(",\"stalled\":[");
        for (i, p) in d.stalled.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"src\":{},\"dst\":{},\"channel\":{},\"sent\":{},\"len\":{},\
                 \"delivered\":{}}}",
                p.src, p.dst, p.head_channel, p.sent, p.len, p.delivered
            );
        }
        s.push_str("],\"held_channels\":[");
        for (i, c) in d.held_channels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(s, "{c}");
        }
        s.push(']');
        if let Some(cycle) = &d.suspected_cycle {
            s.push_str(",\"suspected_cycle\":[");
            for (i, p) in cycle.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(s, "{p}");
            }
            s.push(']');
        }
        s.push('}');
    }
    s.push('}');
    s
}

/// The verdict report for a whole scenario-library run, as one JSON
/// document (schema in `EXPERIMENTS.md`). Deterministic: byte-identical
/// across repeated runs and thread counts of the same library.
pub fn verdict_report_json(set: &ScenarioSet) -> String {
    use std::fmt::Write;
    let (mut pass, mut partial, mut fail, mut unexpected) = (0usize, 0usize, 0usize, 0usize);
    for v in &set.verdicts {
        match v.status {
            VerdictStatus::Pass => pass += 1,
            VerdictStatus::Partial => partial += 1,
            VerdictStatus::Fail => fail += 1,
        }
        if !v.as_expected() {
            unexpected += 1;
        }
    }
    let mut s = format!(
        "{{\"v\":1,\"total\":{},\"pass\":{pass},\"partial\":{partial},\"fail\":{fail},\
         \"unexpected\":{unexpected},\"skipped\":[",
        set.verdicts.len()
    );
    for (i, name) in set.skipped.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\"", esc(name));
    }
    s.push_str("],\"scenarios\":[");
    for (i, v) in set.verdicts.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&verdict_json(v));
    }
    s.push_str("]}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_builder(name: &str) -> ScenarioBuilder {
        Scenario::builder(name)
            .sizes(MessageSizeDist::Fixed(32))
            .warmup(500)
            .measure(3_000)
    }

    #[test]
    fn builder_validates_workload_and_expectations() {
        // No workload.
        let err = quick_builder("w").expect_sustainable().build().unwrap_err();
        assert!(err.contains("workload"), "{err}");
        // Both workloads.
        let err = quick_builder("w")
            .load(0.2)
            .message(0, 0, 1, 8)
            .expect_sustainable()
            .build()
            .unwrap_err();
        assert!(err.contains("not both"), "{err}");
        // No expectation.
        let err = quick_builder("w").load(0.2).build().unwrap_err();
        assert!(err.contains("expectation"), "{err}");
        // Bad load.
        let err = quick_builder("w")
            .load(1.5)
            .expect_sustainable()
            .build()
            .unwrap_err();
        assert!(err.contains("outside"), "{err}");
        // Bad name.
        let err = Scenario::builder("bad name!")
            .load(0.2)
            .expect_sustainable()
            .build()
            .unwrap_err();
        assert!(err.contains("name"), "{err}");
        // Degenerate fault window.
        let err = quick_builder("w")
            .load(0.2)
            .expect_sustainable()
            .fault(Fault {
                target: FaultTarget::Channel(0),
                onset: 5,
                repair: Some(5),
            })
            .build()
            .unwrap_err();
        assert!(err.contains("empty fault window"), "{err}");
        // Valid.
        assert!(quick_builder("ok-1").load(0.2).expect_sustainable().build().is_ok());
    }

    #[test]
    fn sustainable_scenario_passes_and_saturated_probe_works() {
        let v = quick_builder("base")
            .loads(&[0.1, 0.2])
            .expect_sustainable()
            .expect_delivery(0.5)
            .expect_no_stall()
            .build()
            .unwrap()
            .run(2, &CampaignPolicy::isolate())
            .unwrap();
        assert_eq!(v.status, VerdictStatus::Pass, "{v}");
        assert!(v.as_expected());
        assert_eq!(v.points.len(), 2);
        assert!(v.checks.iter().all(|c| c.status == CheckStatus::Passed));

        // The same network at load 0.9 with a tight queue limit is not
        // sustainable — as a saturation probe *expects*.
        let v = quick_builder("probe")
            .load(0.9)
            .queue_limit(20)
            .expect_saturated()
            .build()
            .unwrap()
            .run(1, &CampaignPolicy::isolate())
            .unwrap();
        assert_eq!(v.status, VerdictStatus::Pass, "{v}");
    }

    #[test]
    fn violated_expectation_fails_with_reasons() {
        let v = quick_builder("too-strict")
            .load(0.2)
            .expect_p99_latency(1)
            .build()
            .unwrap()
            .run(1, &CampaignPolicy::isolate())
            .unwrap();
        assert_eq!(v.status, VerdictStatus::Fail);
        assert!(!v.as_expected());
        let check = v
            .checks
            .iter()
            .find(|c| c.what.contains("p99"))
            .expect("p99 check present");
        assert_eq!(check.status, CheckStatus::Failed);
        assert!(check.detail.contains("load 0.2: p99"), "{}", check.detail);
    }

    #[test]
    fn budget_cut_is_partial_unless_allowed() {
        let strict = quick_builder("budgeted")
            .load(0.2)
            .budget_cycles(1_000)
            .expect_sustainable()
            .build()
            .unwrap()
            .run(1, &CampaignPolicy::isolate())
            .unwrap();
        assert_eq!(strict.status, VerdictStatus::Partial, "{strict}");
        assert!(strict.points[0].outcome.is_partial());

        let lenient = quick_builder("budgeted")
            .load(0.2)
            .budget_cycles(1_000)
            .expect_sustainable()
            .allow_partial()
            .build()
            .unwrap()
            .run(1, &CampaignPolicy::isolate())
            .unwrap();
        assert_eq!(lenient.status, VerdictStatus::Pass, "{lenient}");
    }

    #[test]
    fn parse_round_trips_a_full_file() {
        let text = "\
# A scenario exercising every key class.
name = full-demo
description = parses every key
network = vmin
vcs = 2
wiring = cube
k = 4
n = 3
pattern = hotspot:0.05
sizes = fixed:32
loads = 0.1, 0.2
seed = 99
warmup = 500
measure = 3000
queue_limit = 64
buffer_depth = 2
watchdog_window = 10000
fault_abort = on
budget_cycles = 0
budget_ms = 0
fault = channel 7 @ 100..500
fault = lane 9.1 @ 200..
fault = switch 3
chaos.target = lane
chaos.count = 2
chaos.min_onset = 100
chaos.max_onset = 400
chaos.duration = 150
chaos.cooldown = 50
chaos.rounds = 2
expect.sustainable = true
expect.delivery = 0.8
expect.p99_latency = 50000
expect.no_stall = true
expect.allow_partial = true
expected_verdict = pass
chaos_opt_in = true
";
        let s = Scenario::parse(text, "full-demo.scn").unwrap();
        assert_eq!(s.name(), "full-demo");
        assert_eq!(s.description(), "parses every key");
        assert!(s.is_chaos_opt_in());
        assert_eq!(s.expected_verdict(), VerdictStatus::Pass);
        assert_eq!(s.experiment().network, NetworkSpec::vmin(2));
        assert!(matches!(
            s.experiment().pattern,
            TrafficPattern::HotSpot { .. }
        ));
        assert_eq!(s.loads, vec![0.1, 0.2]);
        assert_eq!(s.faults.len(), 3);
        assert_eq!(
            s.faults.faults()[0],
            Fault::transient(FaultTarget::Channel(7), 100, 500)
        );
        assert_eq!(
            s.faults.faults()[1],
            Fault {
                target: FaultTarget::Lane { channel: 9, vc: 1 },
                onset: 200,
                repair: None
            }
        );
        assert_eq!(
            s.faults.faults()[2],
            Fault::permanent(FaultTarget::Switch(3))
        );
        let chaos = s.chaos.expect("chaos block parsed");
        assert_eq!(chaos.target, ChaosTarget::Lane);
        assert_eq!((chaos.count, chaos.rounds), (2, 2));
        assert_eq!(s.expect.delivery, Some(0.8));
        assert!(s.expect.no_stall && s.expect.allow_partial);
        assert_eq!(s.experiment().sim.seed, 99);
        assert!(s.experiment().sim.fault_abort);
    }

    #[test]
    fn parse_rejects_unknown_keys_and_bad_values_with_line_numbers() {
        let err = Scenario::parse("loads = 0.2\nbogus_key = 1\n", "x.scn").unwrap_err();
        assert!(err.contains("x.scn:2"), "{err}");
        assert!(err.contains("bogus_key"), "{err}");
        let err = Scenario::parse("loads = abc\n", "x.scn").unwrap_err();
        assert!(err.contains("x.scn:1"), "{err}");
        let err = Scenario::parse("fault = channel 3 @ 10\n", "x.scn").unwrap_err();
        assert!(err.contains("onset..repair"), "{err}");
        let err =
            Scenario::parse("expected_verdict = maybe\nloads = 0.1\n", "x.scn").unwrap_err();
        assert!(err.contains("pass or fail"), "{err}");
        // Name defaults from the origin stem.
        let s = Scenario::parse(
            "loads = 0.2\nwarmup = 100\nmeasure = 500\nexpect.sustainable = true\n",
            "/tmp/stem-name.scn",
        )
        .unwrap();
        assert_eq!(s.name(), "stem-name");
    }

    #[test]
    fn chaos_scenario_is_deterministic_across_threads() {
        let build = || {
            quick_builder("chaos-det")
                .network(NetworkSpec::Bmin)
                .loads(&[0.15, 0.25])
                .seed(1234)
                .chaos(ChaosSchedule {
                    target: ChaosTarget::Channel,
                    count: 2,
                    min_onset: 200,
                    max_onset: 800,
                    duration: 300,
                    cooldown: 100,
                    rounds: 2,
                })
                .expect_delivery(0.2)
                .build()
                .unwrap()
        };
        let a = build().run(1, &CampaignPolicy::isolate()).unwrap();
        let b = build().run(4, &CampaignPolicy::isolate()).unwrap();
        let set_a = ScenarioSet {
            verdicts: vec![a],
            skipped: vec![],
        };
        let set_b = ScenarioSet {
            verdicts: vec![b],
            skipped: vec![],
        };
        assert_eq!(
            verdict_report_json(&set_a),
            verdict_report_json(&set_b),
            "verdict JSON must be thread-count invariant"
        );
    }

    #[test]
    fn verdict_json_shape_is_wellformed() {
        let v = quick_builder("shape")
            .load(0.2)
            .expect_sustainable()
            .build()
            .unwrap()
            .run(1, &CampaignPolicy::isolate())
            .unwrap();
        let set = ScenarioSet {
            verdicts: vec![v],
            skipped: vec!["gated".to_string()],
        };
        let json = verdict_report_json(&set);
        assert!(json.starts_with("{\"v\":1,"));
        assert!(json.contains("\"skipped\":[\"gated\"]"));
        assert!(json.contains("\"name\":\"shape\""));
        assert!(json.contains("\"status\":\"pass\""));
        assert!(json.contains("\"checks\":["));
        assert!(json.contains("\"points\":["));
        assert!(json.ends_with("]}\n"));
        // No wall-clock or float keys sneak in.
        assert!(!json.contains("wall"));
        assert!(!json.contains("_bits"));
    }
}
