//! Text and CSV rendering of latency–throughput curves.

use crate::sweep::SweepPoint;
use std::fmt::Write as _;

/// Render a curve as an aligned text table (the per-figure series the
/// `figures` harness prints).
pub fn curve_table(label: &str, points: &[SweepPoint]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "# {label}");
    let _ = writeln!(
        s,
        "{:>10} {:>12} {:>14} {:>12} {:>10} {:>12}",
        "offered%", "accepted%", "latency(us)", "p95(us)", "maxQ", "sustainable"
    );
    for p in points {
        let r = &p.report;
        let status = match (r.sustainable, r.steady) {
            (true, true) => "yes",
            (false, _) => "NO",
            (true, false) => "lagging", // queues small but delivery behind
        };
        let _ = writeln!(
            s,
            "{:>10.1} {:>12.2} {:>14.2} {:>12.2} {:>10} {:>12}",
            p.offered * 100.0,
            r.throughput_percent(),
            r.mean_latency_us(),
            r.p95_latency_cycles as f64 * minnet_sim::CYCLE_US,
            r.max_queue,
            status,
        );
    }
    s
}

/// Render a curve as CSV with a metadata column for the series label.
pub fn curve_csv(label: &str, points: &[SweepPoint]) -> String {
    let mut s = String::from(
        "series,offered_load,accepted_load,mean_latency_us,p50_us,p95_us,p99_us,max_us,mean_queue,max_queue,sustainable,steady,delivered_packets\n",
    );
    for p in points {
        let r = &p.report;
        let us = |c: u64| c as f64 * minnet_sim::CYCLE_US;
        let _ = writeln!(
            s,
            "{label},{:.4},{:.6},{:.3},{:.3},{:.3},{:.3},{:.3},{:.2},{},{},{},{}",
            p.offered,
            r.accepted_flits_per_node_cycle,
            r.mean_latency_us(),
            us(r.p50_latency_cycles),
            us(r.p95_latency_cycles),
            us(r.p99_latency_cycles),
            us(r.max_latency_cycles),
            r.mean_queue,
            r.max_queue,
            r.sustainable,
            r.steady,
            r.delivered_packets,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::Experiment;
    use crate::spec::NetworkSpec;
    use crate::sweep::latency_throughput_curve;
    use minnet_traffic::MessageSizeDist;

    fn points() -> Vec<SweepPoint> {
        let mut e = Experiment::paper_default(NetworkSpec::tmin());
        e.sizes = MessageSizeDist::Fixed(16);
        e.sim.warmup = 200;
        e.sim.measure = 2_000;
        latency_throughput_curve(&e, &[0.1, 0.2], 1).unwrap()
    }

    #[test]
    fn table_contains_rows_and_header() {
        let t = curve_table("demo", &points());
        assert!(t.contains("# demo"));
        assert!(t.contains("offered%"));
        assert_eq!(t.lines().count(), 4); // title + header + 2 rows
    }

    #[test]
    fn csv_is_well_formed() {
        let c = curve_csv("tmin", &points());
        let lines: Vec<&str> = c.lines().collect();
        assert_eq!(lines.len(), 3);
        let cols = lines[0].split(',').count();
        for l in &lines[1..] {
            assert_eq!(l.split(',').count(), cols);
            assert!(l.starts_with("tmin,"));
        }
    }
}
