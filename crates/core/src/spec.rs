//! Network specifications: the four designs of the paper as one enum.

use minnet_topology::{build_bmin, build_unidir, Geometry, NetworkGraph, UnidirKind};

/// One of the four switch-based wormhole networks under evaluation.
///
/// Unless stated otherwise the unidirectional networks use the **cube**
/// interconnection — §5.2 shows it dominates the butterfly wiring for
/// partitioned workloads, and the paper's §5.3 comparison uses cube
/// TMIN/DMIN/VMIN against the butterfly BMIN.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NetworkSpec {
    /// Traditional MIN: one channel per port, one VC.
    Tmin(UnidirKind),
    /// d-dilated MIN (the paper evaluates `d = 2`).
    Dmin(UnidirKind, u8),
    /// MIN with `v` virtual channels per physical channel (paper: 2).
    Vmin(UnidirKind, u8),
    /// Bidirectional butterfly MIN (fat tree, turnaround routing).
    Bmin,
}

impl NetworkSpec {
    /// Cube TMIN.
    pub fn tmin() -> NetworkSpec {
        NetworkSpec::Tmin(UnidirKind::Cube)
    }

    /// Cube DMIN with dilation `d`.
    pub fn dmin(d: u8) -> NetworkSpec {
        NetworkSpec::Dmin(UnidirKind::Cube, d)
    }

    /// Cube VMIN with `v` virtual channels.
    pub fn vmin(v: u8) -> NetworkSpec {
        NetworkSpec::Vmin(UnidirKind::Cube, v)
    }

    /// The four §5.3 contenders: TMIN, DMIN(2), VMIN(2), BMIN.
    pub fn paper_lineup() -> [NetworkSpec; 4] {
        [
            NetworkSpec::tmin(),
            NetworkSpec::dmin(2),
            NetworkSpec::vmin(2),
            NetworkSpec::Bmin,
        ]
    }

    /// Build the static network graph for geometry `g`.
    pub fn build(&self, g: Geometry) -> NetworkGraph {
        match *self {
            NetworkSpec::Tmin(kind) => build_unidir(g, kind, 1),
            NetworkSpec::Dmin(kind, d) => build_unidir(g, kind, d),
            NetworkSpec::Vmin(kind, _) => build_unidir(g, kind, 1),
            NetworkSpec::Bmin => build_bmin(g),
        }
    }

    /// Virtual channels per physical channel this design uses.
    pub fn vcs(&self) -> u8 {
        match *self {
            NetworkSpec::Vmin(_, v) => v,
            _ => 1,
        }
    }

    /// Short display name matching the paper's terminology.
    pub fn name(&self) -> String {
        let wiring = |k: UnidirKind| match k {
            UnidirKind::Cube => "cube",
            UnidirKind::Butterfly => "butterfly",
            UnidirKind::Omega => "omega",
            UnidirKind::Baseline => "baseline",
        };
        match *self {
            NetworkSpec::Tmin(k) => format!("TMIN({})", wiring(k)),
            NetworkSpec::Dmin(k, d) => format!("DMIN({}, d={d})", wiring(k)),
            NetworkSpec::Vmin(k, v) => format!("VMIN({}, v={v})", wiring(k)),
            NetworkSpec::Bmin => "BMIN".to_string(),
        }
    }

    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            NetworkSpec::Dmin(_, 0) => Err("dilation must be at least 1".into()),
            NetworkSpec::Vmin(_, 0) => Err("at least one virtual channel is required".into()),
            _ => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_have_expected_shapes() {
        let g = Geometry::new(4, 3);
        assert_eq!(NetworkSpec::tmin().build(g).num_channels(), 256);
        assert_eq!(NetworkSpec::dmin(2).build(g).num_channels(), 384);
        assert_eq!(NetworkSpec::vmin(2).build(g).num_channels(), 256);
        assert_eq!(NetworkSpec::Bmin.build(g).num_channels(), 384);
        assert_eq!(NetworkSpec::vmin(2).vcs(), 2);
        assert_eq!(NetworkSpec::Bmin.vcs(), 1);
    }

    #[test]
    fn names() {
        assert_eq!(NetworkSpec::tmin().name(), "TMIN(cube)");
        assert_eq!(NetworkSpec::dmin(2).name(), "DMIN(cube, d=2)");
        assert_eq!(NetworkSpec::vmin(2).name(), "VMIN(cube, v=2)");
        assert_eq!(NetworkSpec::Bmin.name(), "BMIN");
        assert_eq!(
            NetworkSpec::Tmin(UnidirKind::Butterfly).name(),
            "TMIN(butterfly)"
        );
    }

    #[test]
    fn validation() {
        assert!(NetworkSpec::dmin(0).validate().is_err());
        assert!(NetworkSpec::vmin(0).validate().is_err());
        assert!(NetworkSpec::dmin(2).validate().is_ok());
        for s in NetworkSpec::paper_lineup() {
            assert!(s.validate().is_ok());
        }
    }
}
