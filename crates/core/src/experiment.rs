//! One §5 experiment: a network, a workload family, and engine settings.
//!
//! Two evaluation paths share one engine:
//!
//! * [`Experiment::run`] / [`Experiment::run_seeded`] — the original
//!   one-shot path: build the network, compile the workload, run. Nothing
//!   is cached; right for a single report.
//! * [`CompiledExperiment`] — the compile-once / run-many path: the
//!   network graph, the per-`(channel, destination)` routing table, and
//!   the workload *template* are built exactly once; each run only
//!   rescales the template to its load (a handful of float ops per node)
//!   and reuses a pooled or caller-owned
//!   [`EngineState`](minnet_sim::EngineState). Sweeps, saturation
//!   searches and replicated designs all sit on this path.
//!
//! Both paths are pinned bit-identical (`SimReport::bitwise_eq`) by the
//! workspace differential tests — compiling is *only* a performance
//! decision.

use crate::spec::NetworkSpec;
use minnet_sim::{
    run_simulation, with_pooled_state, CompiledNet, EngineConfig, EngineState, SimError, SimReport,
};
use minnet_topology::{Geometry, NetworkGraph};
use minnet_traffic::{
    Clustering, MessageSizeDist, TrafficPattern, Workload, WorkloadSpec, WorkloadTemplate,
};
use std::sync::Arc;

/// A complete experiment description; [`Experiment::run`] evaluates it at
/// one offered load, [`crate::sweep`] over a load range.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Network geometry (`k`, `n`). The paper: 64 nodes of 4×4 switches.
    pub geometry: Geometry,
    /// Which of the four designs to simulate.
    pub network: NetworkSpec,
    /// Destination pattern.
    pub pattern: TrafficPattern,
    /// Node clustering.
    pub clustering: Clustering,
    /// Optional per-cluster relative rates (§5.2 ratios).
    pub rates: Option<Vec<f64>>,
    /// Message sizes (paper: uniform [8, 1024]).
    pub sizes: MessageSizeDist,
    /// Engine settings. `sim.vcs` is overridden by the network spec.
    pub sim: EngineConfig,
}

impl Experiment {
    /// The paper's default setting: 64 nodes (k=4, n=3), global uniform
    /// traffic, uniform [8, 1024]-flit messages.
    pub fn paper_default(network: NetworkSpec) -> Experiment {
        Experiment {
            geometry: Geometry::new(4, 3),
            network,
            pattern: TrafficPattern::Uniform,
            clustering: Clustering::Global,
            rates: None,
            sizes: MessageSizeDist::PAPER,
            sim: EngineConfig::default(),
        }
    }

    /// Simulate at the given offered load (flits/cycle/node; 1.0 = the
    /// one-port injection bound).
    pub fn run(&self, offered_load: f64) -> Result<SimReport, String> {
        self.run_seeded(offered_load, self.sim.seed)
    }

    /// Like [`Experiment::run`] but with an explicit seed (used by sweeps
    /// to decorrelate points).
    pub fn run_seeded(&self, offered_load: f64, seed: u64) -> Result<SimReport, String> {
        self.network.validate()?;
        let net = self.network.build(self.geometry);
        let spec = WorkloadSpec {
            offered_load,
            pattern: self.pattern,
            clustering: self.clustering.clone(),
            rates: self.rates.clone(),
            sizes: self.sizes,
        };
        let workload = Workload::compile(self.geometry, &spec)?;
        let cfg = EngineConfig {
            vcs: self.network.vcs(),
            seed,
            ..self.sim.clone()
        };
        Ok(run_simulation(&net, &workload, &cfg)?)
    }

    /// Compile this experiment for run-many use — see
    /// [`CompiledExperiment`].
    pub fn compile(&self) -> Result<CompiledExperiment, String> {
        CompiledExperiment::compile(self)
    }

    /// The workload spec this experiment evaluates at `offered_load`.
    fn workload_spec(&self, offered_load: f64) -> WorkloadSpec {
        WorkloadSpec {
            offered_load,
            pattern: self.pattern,
            clustering: self.clustering.clone(),
            rates: self.rates.clone(),
            sizes: self.sizes,
        }
    }
}

/// An [`Experiment`] with every load-independent artifact built exactly
/// once: the network graph (shared via `Arc` across sweep threads), the
/// routing table, the transmit order, and the workload template. Each run
/// costs only a workload rescale plus the simulation itself.
///
/// Runs are bit-identical to [`Experiment::run_seeded`] at the same
/// `(load, seed)` — the differential tests enforce it — so callers choose
/// by lifecycle, not semantics: one report → `Experiment::run`; a curve,
/// a search, or replications → compile once and reuse.
#[derive(Clone, Debug)]
pub struct CompiledExperiment {
    net: CompiledNet,
    template: WorkloadTemplate,
    seed: u64,
}

impl CompiledExperiment {
    /// Validate `exp` and build its shared artifacts.
    ///
    /// # Errors
    ///
    /// Reports invalid network specs, malformed workloads, and invalid
    /// engine configurations.
    pub fn compile(exp: &Experiment) -> Result<CompiledExperiment, String> {
        exp.network.validate()?;
        let graph = Arc::new(exp.network.build(exp.geometry));
        // The template ignores the placeholder load; per-run loads come
        // from `workload_at`.
        let template = WorkloadTemplate::compile(exp.geometry, &exp.workload_spec(1.0))?;
        let cfg = EngineConfig {
            vcs: exp.network.vcs(),
            ..exp.sim.clone()
        };
        let net = CompiledNet::new(graph, cfg)?;
        Ok(CompiledExperiment {
            net,
            template,
            seed: exp.sim.seed,
        })
    }

    /// The compiled network (graph, routing table, engine config).
    pub fn network(&self) -> &CompiledNet {
        &self.net
    }

    /// The shared network graph.
    pub fn graph(&self) -> &Arc<NetworkGraph> {
        self.net.network()
    }

    /// The compiled workload template.
    pub fn template(&self) -> &WorkloadTemplate {
        &self.template
    }

    /// The experiment's base seed (`sim.seed`).
    pub fn base_seed(&self) -> u64 {
        self.seed
    }

    /// Simulate at the given offered load with the experiment's own seed,
    /// using this thread's pooled engine state.
    pub fn run(&self, offered_load: f64) -> Result<SimReport, String> {
        self.run_seeded(offered_load, self.seed)
    }

    /// Like [`CompiledExperiment::run`] with an explicit seed, using this
    /// thread's pooled engine state.
    pub fn run_seeded(&self, offered_load: f64, seed: u64) -> Result<SimReport, String> {
        with_pooled_state(|st| self.run_with(offered_load, seed, st))
    }

    /// [`CompiledExperiment::run_seeded`] with the typed error surface —
    /// callers that must distinguish a budget cut (carrying a partial
    /// report) from a watchdog trip or a config problem use this form.
    pub fn run_seeded_typed(&self, offered_load: f64, seed: u64) -> Result<SimReport, SimError> {
        with_pooled_state(|st| self.run_typed(offered_load, seed, st))
    }

    /// Run with an explicit seed *and* a caller-owned engine state — the
    /// form sweep workers use so each worker reuses its own allocations.
    pub fn run_with(
        &self,
        offered_load: f64,
        seed: u64,
        st: &mut EngineState,
    ) -> Result<SimReport, String> {
        Ok(self.run_typed(offered_load, seed, st)?)
    }

    /// [`CompiledExperiment::run_with`] with the typed error surface —
    /// the form the campaign runner uses to classify failures.
    pub fn run_typed(
        &self,
        offered_load: f64,
        seed: u64,
        st: &mut EngineState,
    ) -> Result<SimReport, SimError> {
        let workload = self.template.workload_at(offered_load).map_err(SimError::Config)?;
        self.net.run_poisson(&workload, seed, st)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(network: NetworkSpec) -> Experiment {
        let mut e = Experiment::paper_default(network);
        e.sizes = MessageSizeDist::Fixed(32);
        e.sim.warmup = 1_000;
        e.sim.measure = 6_000;
        e
    }

    #[test]
    fn all_four_networks_run() {
        for spec in NetworkSpec::paper_lineup() {
            let r = quick(spec).run(0.2).unwrap();
            assert!(r.delivered_packets > 0, "{}", spec.name());
            assert!(r.sustainable, "{}", spec.name());
        }
    }

    #[test]
    fn vmin_uses_configured_vcs() {
        // A VMIN(4) must behave differently from a VMIN(1) == TMIN at
        // moderate load.
        let v4 = quick(NetworkSpec::vmin(4)).run(0.5).unwrap();
        let v1 = quick(NetworkSpec::vmin(1)).run(0.5).unwrap();
        assert_ne!(v4.mean_latency_cycles, v1.mean_latency_cycles);
    }

    #[test]
    fn invalid_spec_is_reported() {
        assert!(quick(NetworkSpec::dmin(0)).run(0.2).is_err());
        assert!(quick(NetworkSpec::dmin(0)).compile().is_err());
    }

    #[test]
    fn compiled_matches_one_shot_bitwise() {
        for spec in NetworkSpec::paper_lineup() {
            let exp = quick(spec);
            let compiled = exp.compile().unwrap();
            for (load, seed) in [(0.2, 7u64), (0.5, 0xFEED)] {
                let fresh = exp.run_seeded(load, seed).unwrap();
                let fast = compiled.run_seeded(load, seed).unwrap();
                assert!(
                    fresh.bitwise_eq(&fast),
                    "{} at load {load}: compiled path diverged",
                    spec.name()
                );
            }
        }
    }

    #[test]
    fn state_reuse_is_bit_identical() {
        // One EngineState carried across different loads and seeds must
        // leave no residue: re-running the first case reproduces it.
        let exp = quick(NetworkSpec::vmin(2));
        let compiled = exp.compile().unwrap();
        let mut st = minnet_sim::EngineState::new();
        let first = compiled.run_with(0.3, 1, &mut st).unwrap();
        compiled.run_with(0.7, 2, &mut st).unwrap();
        compiled.run_with(0.1, 3, &mut st).unwrap();
        let again = compiled.run_with(0.3, 1, &mut st).unwrap();
        assert!(first.bitwise_eq(&again));
    }

    #[test]
    fn compiled_run_uses_base_seed() {
        let exp = quick(NetworkSpec::tmin());
        let compiled = exp.compile().unwrap();
        let a = exp.run(0.25).unwrap();
        let b = compiled.run(0.25).unwrap();
        assert!(a.bitwise_eq(&b));
    }
}
