//! One §5 experiment: a network, a workload family, and engine settings.

use crate::spec::NetworkSpec;
use minnet_sim::{run_simulation, EngineConfig, SimReport};
use minnet_topology::Geometry;
use minnet_traffic::{Clustering, MessageSizeDist, TrafficPattern, Workload, WorkloadSpec};

/// A complete experiment description; [`Experiment::run`] evaluates it at
/// one offered load, [`crate::sweep`] over a load range.
#[derive(Clone, Debug)]
pub struct Experiment {
    /// Network geometry (`k`, `n`). The paper: 64 nodes of 4×4 switches.
    pub geometry: Geometry,
    /// Which of the four designs to simulate.
    pub network: NetworkSpec,
    /// Destination pattern.
    pub pattern: TrafficPattern,
    /// Node clustering.
    pub clustering: Clustering,
    /// Optional per-cluster relative rates (§5.2 ratios).
    pub rates: Option<Vec<f64>>,
    /// Message sizes (paper: uniform [8, 1024]).
    pub sizes: MessageSizeDist,
    /// Engine settings. `sim.vcs` is overridden by the network spec.
    pub sim: EngineConfig,
}

impl Experiment {
    /// The paper's default setting: 64 nodes (k=4, n=3), global uniform
    /// traffic, uniform [8, 1024]-flit messages.
    pub fn paper_default(network: NetworkSpec) -> Experiment {
        Experiment {
            geometry: Geometry::new(4, 3),
            network,
            pattern: TrafficPattern::Uniform,
            clustering: Clustering::Global,
            rates: None,
            sizes: MessageSizeDist::PAPER,
            sim: EngineConfig::default(),
        }
    }

    /// Simulate at the given offered load (flits/cycle/node; 1.0 = the
    /// one-port injection bound).
    pub fn run(&self, offered_load: f64) -> Result<SimReport, String> {
        self.run_seeded(offered_load, self.sim.seed)
    }

    /// Like [`Experiment::run`] but with an explicit seed (used by sweeps
    /// to decorrelate points).
    pub fn run_seeded(&self, offered_load: f64, seed: u64) -> Result<SimReport, String> {
        self.network.validate()?;
        let net = self.network.build(self.geometry);
        let spec = WorkloadSpec {
            offered_load,
            pattern: self.pattern,
            clustering: self.clustering.clone(),
            rates: self.rates.clone(),
            sizes: self.sizes,
        };
        let workload = Workload::compile(self.geometry, &spec)?;
        let cfg = EngineConfig {
            vcs: self.network.vcs(),
            seed,
            ..self.sim.clone()
        };
        run_simulation(&net, &workload, &cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(network: NetworkSpec) -> Experiment {
        let mut e = Experiment::paper_default(network);
        e.sizes = MessageSizeDist::Fixed(32);
        e.sim.warmup = 1_000;
        e.sim.measure = 6_000;
        e
    }

    #[test]
    fn all_four_networks_run() {
        for spec in NetworkSpec::paper_lineup() {
            let r = quick(spec).run(0.2).unwrap();
            assert!(r.delivered_packets > 0, "{}", spec.name());
            assert!(r.sustainable, "{}", spec.name());
        }
    }

    #[test]
    fn vmin_uses_configured_vcs() {
        // A VMIN(4) must behave differently from a VMIN(1) == TMIN at
        // moderate load.
        let v4 = quick(NetworkSpec::vmin(4)).run(0.5).unwrap();
        let v1 = quick(NetworkSpec::vmin(1)).run(0.5).unwrap();
        assert_ne!(v4.mean_latency_cycles, v1.mean_latency_cycles);
    }

    #[test]
    fn invalid_spec_is_reported() {
        assert!(quick(NetworkSpec::dmin(0)).run(0.2).is_err());
    }
}
