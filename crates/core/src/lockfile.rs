//! Advisory lock files for JSONL journals and checkpoints.
//!
//! The campaign checkpoint writer (and the `minnetd` job journal built
//! on the same discipline) appends one flushed line per finished task.
//! That is torn-tail safe against a SIGKILL of *one* process, but two
//! live processes appending to the same file interleave partial lines
//! and corrupt everything after the first collision. The writers were
//! designed single-process; this module makes that assumption explicit
//! and enforced: every journal owner takes a `<file>.lock` sibling
//! before touching the journal, and a second acquirer fails fast with
//! an error naming the holder instead of silently interleaving.
//!
//! The lock is *advisory* (nothing stops a rogue `cat >>`), which is
//! the right strength here: the threat model is a misconfigured second
//! daemon or a concurrent CLI resume pointed at the same checkpoint,
//! not an adversary. The lock file holds the owner's PID; a leftover
//! lock whose owner is no longer alive (the previous daemon was
//! SIGKILLed — exactly the crash this PR's recovery path exists for)
//! is stolen rather than wedging every restart behind a manual `rm`.

use std::io::Write;
use std::path::{Path, PathBuf};

/// A held advisory lock. Dropping it releases the lock (removes the
/// file); a SIGKILL leaves it behind for the next acquirer's staleness
/// check.
#[derive(Debug)]
pub struct LockFile {
    path: PathBuf,
}

/// Whether `pid` names a live process. On Linux this is a `/proc/<pid>`
/// probe; elsewhere liveness cannot be checked cheaply without unsafe
/// code, so every holder is presumed alive (fail fast, never steal).
fn pid_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new("/proc").join(pid.to_string()).exists()
    } else {
        true
    }
}

impl LockFile {
    /// The lock sibling guarding `file`: `<file>.lock`.
    pub fn path_for(file: &Path) -> PathBuf {
        let mut name = file.file_name().unwrap_or_default().to_os_string();
        name.push(".lock");
        file.with_file_name(name)
    }

    /// Acquire the advisory lock guarding `file`, failing fast when a
    /// live process already holds it.
    ///
    /// The lock file is created with `create_new` (atomic on every
    /// filesystem that matters) and holds the owner's PID. When the
    /// file already exists: a live owner is a hard error naming the
    /// PID; a dead owner's stale lock is removed and acquisition
    /// retried (bounded — two stealers racing resolve by `create_new`
    /// atomicity, the loser re-reads the winner's fresh PID).
    ///
    /// # Errors
    ///
    /// A live holder, an unreadable/malformed lock file, or I/O
    /// failure creating the lock — all as human-readable strings
    /// naming the lock path.
    pub fn acquire(file: &Path) -> Result<LockFile, String> {
        let path = LockFile::path_for(file);
        let shown = path.display();
        let me = std::process::id();
        for _ in 0..4 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    f.write_all(format!("{me}\n").as_bytes())
                        .and_then(|()| f.flush())
                        .map_err(|e| format!("writing lock {shown}: {e}"))?;
                    return Ok(LockFile { path });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let held = std::fs::read_to_string(&path)
                        .map_err(|e| format!("reading lock {shown}: {e}"))?;
                    match held.trim().parse::<u32>() {
                        // Our own pid counts as live: a second acquire
                        // within one process is still a double-acquire.
                        Ok(pid) if pid_alive(pid) => {
                            return Err(format!(
                                "journal is locked by live process {pid} ({shown}); \
                                 a second writer would interleave appends — stop the \
                                 other process or point this one at a different file"
                            ));
                        }
                        Ok(_) => {
                            // Dead owner (or our own pid recycled into a
                            // stale file): steal and retry create_new.
                            let _ = std::fs::remove_file(&path);
                        }
                        Err(_) => {
                            return Err(format!(
                                "lock {shown} exists but holds no PID; \
                                 remove it manually if no writer is running"
                            ));
                        }
                    }
                }
                Err(e) => return Err(format!("creating lock {shown}: {e}")),
            }
        }
        Err(format!(
            "could not acquire lock {shown}: repeatedly raced other acquirers"
        ))
    }
}

impl Drop for LockFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("minnet_lock_{}_{tag}.jsonl", std::process::id()))
    }

    #[test]
    fn second_acquire_fails_fast_with_holder_pid() {
        let file = temp("double");
        let lock = LockFile::acquire(&file).unwrap();
        let err = LockFile::acquire(&file).unwrap_err();
        assert!(err.contains("locked by live process"), "{err}");
        assert!(err.contains(&std::process::id().to_string()), "{err}");
        drop(lock);
        // Released: a fresh acquire succeeds.
        let lock = LockFile::acquire(&file).unwrap();
        drop(lock);
        assert!(!LockFile::path_for(&file).exists());
    }

    #[test]
    fn stale_lock_of_dead_process_is_stolen() {
        let file = temp("stale");
        let lock_path = LockFile::path_for(&file);
        // No PID this large exists (PID_MAX_LIMIT is 2^22 on Linux).
        std::fs::write(&lock_path, "4194304000\n").unwrap();
        let lock = LockFile::acquire(&file).unwrap();
        let held = std::fs::read_to_string(&lock_path).unwrap();
        assert_eq!(held.trim(), std::process::id().to_string());
        drop(lock);
    }

    #[test]
    fn garbage_lock_is_refused_not_stolen() {
        let file = temp("garbage");
        let lock_path = LockFile::path_for(&file);
        std::fs::write(&lock_path, "not a pid\n").unwrap();
        let err = LockFile::acquire(&file).unwrap_err();
        assert!(err.contains("holds no PID"), "{err}");
        std::fs::remove_file(&lock_path).unwrap();
    }
}
