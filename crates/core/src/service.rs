//! The `minnetd` wire protocol, job model, and client.
//!
//! The simulation service splits across two crates: this module holds
//! everything both sides of the wire share — the [`JobSpec`] job
//! description, the JSON-lines request/response protocol, the
//! [`ServiceClient`] the `minnet submit|status|result|drain`
//! subcommands use, and [`run_job`], the deterministic job executor —
//! while `crates/daemon` holds the server (queue, admission control,
//! journal, recovery). The split keeps the dependency arrow pointing
//! one way (`minnetd` → `minnet`) and lets the CLI talk to the daemon
//! without a third protocol crate.
//!
//! ## Protocol
//!
//! One JSON object per line, one request per line, one response line
//! back. Requests carry an `"op"`; responses carry a `"status"`:
//!
//! ```text
//! → {"op":"submit","client":"bench-0","spec":{…}}
//! ← {"status":"accepted","job_id":"91c3…","cached":false}
//! ← {"status":"rejected","reason":"queue full …","retry_after_ms":150}
//! → {"op":"status","job_id":"91c3…"}
//! ← {"status":"job","job_id":"91c3…","state":"running"}
//! → {"op":"result","job_id":"91c3…"}
//! ← {"status":"result","job_id":"91c3…","result":{…}}
//! → {"op":"stats"} / {"op":"drain"} / {"op":"ping"}
//! ← {"status":"error","kind":"config","message":"…"}
//! ```
//!
//! Errors cross the wire as structured `{kind, message}` pairs derived
//! from [`SimError`] variants (see [`error_kind`]) — possible because
//! the engine's error surface is fully typed (the `From<String> for
//! SimError` shim is gone).
//!
//! ## Determinism contract
//!
//! A job's identity is the FNV config hash of its compiled experiment
//! plus the load grid / retry / chaos knobs — the same hash family the
//! campaign checkpoints use. [`run_job`] serializes its result with the
//! campaign's bit-exact float encoding (`f64::to_bits`), so an
//! identical spec always produces **byte-identical** result JSON:
//! cache hits, journal replays, and post-crash recoveries are all
//! comparable with `==` on the raw bytes.

use crate::campaign::{
    config_hash, json_bits_array, json_bool, json_str, json_u64, retry_seed, run_outcomes,
    task_line, CampaignPolicy, Checkpoint,
};
use crate::experiment::Experiment;
use crate::spec::NetworkSpec;
use crate::sweep::mix;
use minnet_sim::SimError;
use minnet_topology::{Geometry, UnidirKind};
use minnet_traffic::{Clustering, MessageSizeDist, TrafficPattern};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::Duration;

/// Wire protocol version (checked nowhere yet; bumped on breaking
/// changes so mixed-version deployments fail loudly, not subtly).
pub const PROTOCOL_VERSION: u64 = 1;

/// Result document version (the `"v"` in every result JSON).
pub const RESULT_VERSION: u64 = 1;

// ---- job specification -----------------------------------------------

/// A simulation job: one latency-throughput curve over a load grid.
///
/// The flat, string-tagged form mirrors the `minnet` CLI options so the
/// client subcommands translate directly; [`JobSpec::to_experiment`]
/// turns it into the typed [`Experiment`] and is where validation
/// happens (as structured [`SimError::Config`] values, ready for the
/// wire).
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// Network design: `tmin` | `dmin` | `vmin` | `bmin`.
    pub network: String,
    /// Unidirectional wiring: `cube` | `butterfly` | `omega` | `baseline`.
    pub wiring: String,
    /// DMIN dilation.
    pub dilation: u8,
    /// VMIN virtual channels.
    pub vcs: u8,
    /// Switch radix.
    pub k: u32,
    /// Stages (`k^n` terminals).
    pub n: u32,
    /// Traffic pattern: `uniform` | `shuffle` | `hotspot:<extra>`.
    pub pattern: String,
    /// Message sizes: `paper` | `fixed:<flits>`.
    pub sizes: String,
    /// Offered loads (flits/cycle/node), one curve point each.
    pub loads: Vec<f64>,
    /// Warmup cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Base seed for the per-point seed grid.
    pub seed: u64,
    /// Cycle budget per point (0 = none requested; the daemon
    /// substitutes its mandatory default).
    pub budget_cycles: u64,
    /// Wall-clock budget per point in ms (0 = none requested).
    pub budget_ms: u64,
    /// Same-point retries after a panic or engine error.
    pub retries: u32,
    /// Chaos knob: panic the first N attempts of every point, so the
    /// per-job isolation and derived-seed retry ladder can be exercised
    /// deterministically over the wire. 0 in production.
    pub chaos_panic_attempts: u32,
}

impl Default for JobSpec {
    /// The paper's default experiment at CLI-default windows.
    fn default() -> JobSpec {
        JobSpec {
            network: "tmin".into(),
            wiring: "cube".into(),
            dilation: 2,
            vcs: 2,
            k: 4,
            n: 3,
            pattern: "uniform".into(),
            sizes: "paper".into(),
            loads: (1..=9).map(|i| f64::from(i) / 10.0).collect(),
            warmup: 20_000,
            measure: 100_000,
            seed: minnet_sim::EngineConfig::default().seed,
            budget_cycles: 0,
            budget_ms: 0,
            retries: 0,
            chaos_panic_attempts: 0,
        }
    }
}

impl JobSpec {
    /// Build the typed experiment this spec describes.
    ///
    /// # Errors
    ///
    /// [`SimError::Config`] naming the offending field — the structured
    /// form the daemon serializes back over the wire.
    pub fn to_experiment(&self) -> Result<Experiment, SimError> {
        let bad = |msg: String| SimError::Config(msg);
        let wiring = match self.wiring.as_str() {
            "cube" => UnidirKind::Cube,
            "butterfly" => UnidirKind::Butterfly,
            "omega" => UnidirKind::Omega,
            "baseline" => UnidirKind::Baseline,
            other => return Err(bad(format!("unknown wiring {other:?}"))),
        };
        let network = match self.network.as_str() {
            "tmin" => NetworkSpec::Tmin(wiring),
            "dmin" => NetworkSpec::Dmin(wiring, self.dilation),
            "vmin" => NetworkSpec::Vmin(wiring, self.vcs),
            "bmin" => NetworkSpec::Bmin,
            other => return Err(bad(format!("unknown network {other:?}"))),
        };
        network.validate().map_err(SimError::Config)?;
        let pattern = match self.pattern.as_str() {
            "uniform" => TrafficPattern::Uniform,
            "shuffle" => TrafficPattern::SHUFFLE,
            p => {
                let Some(x) = p.strip_prefix("hotspot:") else {
                    return Err(bad(format!("unknown pattern {p:?}")));
                };
                let extra: f64 = x
                    .parse()
                    .map_err(|e| bad(format!("hotspot extra rate: {e}")))?;
                TrafficPattern::HotSpot { extra }
            }
        };
        let sizes = match self.sizes.as_str() {
            "paper" => MessageSizeDist::PAPER,
            s => {
                let Some(len) = s.strip_prefix("fixed:") else {
                    return Err(bad(format!("unknown sizes {s:?}")));
                };
                MessageSizeDist::Fixed(len.parse().map_err(|e| bad(format!("fixed size: {e}")))?)
            }
        };
        if self.k < 2 || self.n == 0 {
            return Err(bad(format!(
                "geometry k={} n={} is degenerate (need k >= 2, n >= 1)",
                self.k, self.n
            )));
        }
        if self.loads.is_empty() {
            return Err(bad("a job needs at least one load point".into()));
        }
        if self.loads.iter().any(|l| !l.is_finite() || *l <= 0.0) {
            return Err(bad("loads must be finite and positive".into()));
        }
        let mut exp = Experiment {
            geometry: Geometry::new(self.k, self.n),
            network,
            pattern,
            clustering: Clustering::Global,
            rates: None,
            sizes,
            sim: Default::default(),
        };
        exp.sim.warmup = self.warmup;
        exp.sim.measure = self.measure;
        exp.sim.seed = self.seed;
        exp.sim.budget.max_cycles = self.budget_cycles;
        exp.sim.budget.max_wall_ms = self.budget_ms;
        exp.sim.validate()?;
        Ok(exp)
    }

    /// The FNV config hash identifying this job — the result-cache and
    /// journal key. Same hash family as the campaign checkpoints: the
    /// full experiment (`Debug` covers geometry, network, workload and
    /// engine config including seed and budget) plus the bit-exact load
    /// grid and the retry/chaos knobs.
    pub fn job_hash(&self) -> Result<u64, SimError> {
        let exp = self.to_experiment()?;
        let bits: Vec<u64> = self.loads.iter().map(|l| l.to_bits()).collect();
        Ok(config_hash(
            "service_curve",
            &exp,
            &format!("loads{bits:?}/chaos{}", self.chaos_panic_attempts),
            self.retries,
        ))
    }

    /// [`JobSpec::job_hash`] rendered as the wire-format job id.
    pub fn job_id(&self) -> Result<String, SimError> {
        Ok(format!("{:016x}", self.job_hash()?))
    }

    /// Canonical single-line JSON encoding (loads as `f64::to_bits`
    /// patterns — the spec must survive journal round trips without
    /// perturbing the job hash).
    pub fn to_json(&self) -> String {
        let esc = crate::campaign::esc;
        let mut loads = String::new();
        for (i, l) in self.loads.iter().enumerate() {
            if i > 0 {
                loads.push(',');
            }
            loads.push('"');
            loads.push_str(&l.to_bits().to_string());
            loads.push('"');
        }
        format!(
            "{{\"network\":\"{}\",\"wiring\":\"{}\",\"dilation\":{},\"vcs\":{},\
             \"k\":{},\"n\":{},\"pattern\":\"{}\",\"sizes\":\"{}\",\
             \"loads_bits\":[{loads}],\"warmup\":{},\"measure\":{},\"seed\":{},\
             \"budget_cycles\":{},\"budget_ms\":{},\"retries\":{},\"chaos\":{}}}",
            esc(&self.network),
            esc(&self.wiring),
            self.dilation,
            self.vcs,
            self.k,
            self.n,
            esc(&self.pattern),
            esc(&self.sizes),
            self.warmup,
            self.measure,
            self.seed,
            self.budget_cycles,
            self.budget_ms,
            self.retries,
            self.chaos_panic_attempts,
        )
    }

    /// Parse a spec from a line containing its JSON object (flat key
    /// scan — spec keys are unique within a request/journal line).
    /// `None` marks a torn or malformed line.
    pub fn from_json(line: &str) -> Option<JobSpec> {
        Some(JobSpec {
            network: json_str(line, "network")?,
            wiring: json_str(line, "wiring")?,
            dilation: json_u64(line, "dilation")? as u8,
            vcs: json_u64(line, "vcs")? as u8,
            k: json_u64(line, "k")? as u32,
            n: json_u64(line, "n")? as u32,
            pattern: json_str(line, "pattern")?,
            sizes: json_str(line, "sizes")?,
            loads: json_bits_array(line, "loads_bits")?,
            warmup: json_u64(line, "warmup")?,
            measure: json_u64(line, "measure")?,
            seed: json_u64(line, "seed")?,
            budget_cycles: json_u64(line, "budget_cycles")?,
            budget_ms: json_u64(line, "budget_ms")?,
            retries: json_u64(line, "retries")? as u32,
            chaos_panic_attempts: json_u64(line, "chaos")? as u32,
        })
    }
}

// ---- job execution ---------------------------------------------------

/// Run one job to its canonical result JSON — the deterministic core
/// the daemon's workers (and recovery path) execute.
///
/// Reuses the campaign machinery end to end: per-point
/// `catch_unwind` isolation on a fresh worker-owned `EngineState`,
/// derived-seed retries (`mix(seed, 0x5245_7452 + attempt)`), budget
/// cuts as `partial` outcomes, and — when `checkpoint` is set — the
/// versioned JSONL checkpoint with torn-tail truncation, so a job
/// killed mid-curve resumes from its completed points and still
/// produces **byte-identical** result JSON.
///
/// The chaos knob panics the first `chaos_panic_attempts` attempts of
/// every point before the real run, which exercises the isolation and
/// retry ladder without special-casing the execution path.
///
/// # Errors
///
/// Configuration problems and checkpoint I/O only — runtime failures
/// (panics, watchdog trips, budget cuts) become per-point outcome
/// annotations inside the result.
pub fn run_job(
    spec: &JobSpec,
    checkpoint: Option<PathBuf>,
    threads: usize,
) -> Result<String, String> {
    let exp = spec.to_experiment().map_err(String::from)?;
    let compiled = exp.compile()?;
    let base = compiled.base_seed();
    let hash = spec.job_hash().map_err(String::from)?;
    let policy = CampaignPolicy {
        retries: spec.retries,
        checkpoint,
        require_existing: false,
    };
    let mut ckpt = Checkpoint::open(&policy, "service_curve", hash, spec.loads.len())?;
    let chaos = spec.chaos_panic_attempts;
    let results = run_outcomes(
        threads,
        spec.retries,
        ckpt.preloaded(spec.loads.len()),
        |i, attempts, outcome| ckpt.append(i, attempts, outcome),
        |i, attempt, st| {
            if attempt < chaos {
                panic!("chaos: injected panic at point {i} attempt {attempt}");
            }
            compiled.run_typed(spec.loads[i], retry_seed(mix(base, i as u64 + 1), attempt), st)
        },
    )?;
    let mut out = format!(
        "{{\"v\":{RESULT_VERSION},\"job_id\":\"{hash:016x}\",\"points\":[",
    );
    for (i, (outcome, attempts)) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let line = task_line(i, *attempts, outcome)?;
        out.push_str(line.trim_end());
    }
    out.push_str("]}");
    Ok(out)
}

// ---- structured errors -----------------------------------------------

/// The wire `kind` tag of a [`SimError`] variant.
pub fn error_kind(e: &SimError) -> &'static str {
    match e {
        SimError::Config(_) => "config",
        SimError::GeometryMismatch { .. } => "geometry_mismatch",
        SimError::Routing(_) => "routing",
        SimError::Fault(_) => "fault",
        SimError::NoProgress(_) => "no_progress",
        SimError::BudgetExceeded(_) => "budget_exceeded",
        SimError::Internal { .. } => "internal",
    }
}

// ---- requests --------------------------------------------------------

/// One client request, one line on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Submit a job for execution (or cache lookup).
    Submit {
        /// Client identity for the per-client in-flight cap.
        client: String,
        /// The job.
        spec: JobSpec,
    },
    /// Query a job's state.
    Status {
        /// The job id from the accept response.
        job_id: String,
    },
    /// Fetch a finished job's result JSON.
    Result {
        /// The job id from the accept response.
        job_id: String,
    },
    /// Daemon counters (queue depth, outcomes, cache hits).
    Stats,
    /// Stop admissions and finish in-flight work.
    Drain,
    /// Liveness probe.
    Ping,
}

impl Request {
    /// Encode as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let esc = crate::campaign::esc;
        match self {
            Request::Submit { client, spec } => format!(
                "{{\"op\":\"submit\",\"client\":\"{}\",\"spec\":{}}}",
                esc(client),
                spec.to_json()
            ),
            Request::Status { job_id } => {
                format!("{{\"op\":\"status\",\"job_id\":\"{}\"}}", esc(job_id))
            }
            Request::Result { job_id } => {
                format!("{{\"op\":\"result\",\"job_id\":\"{}\"}}", esc(job_id))
            }
            Request::Stats => "{\"op\":\"stats\"}".to_string(),
            Request::Drain => "{\"op\":\"drain\"}".to_string(),
            Request::Ping => "{\"op\":\"ping\"}".to_string(),
        }
    }

    /// Parse one wire line; `None` marks a malformed request.
    pub fn parse(line: &str) -> Option<Request> {
        match json_str(line, "op")?.as_str() {
            "submit" => Some(Request::Submit {
                client: json_str(line, "client")?,
                spec: JobSpec::from_json(line)?,
            }),
            "status" => Some(Request::Status {
                job_id: json_str(line, "job_id")?,
            }),
            "result" => Some(Request::Result {
                job_id: json_str(line, "job_id")?,
            }),
            "stats" => Some(Request::Stats),
            "drain" => Some(Request::Drain),
            "ping" => Some(Request::Ping),
            _ => None,
        }
    }
}

// ---- responses -------------------------------------------------------

/// Daemon counters reported by [`Request::Stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Jobs accepted but not yet started.
    pub queued: u64,
    /// Jobs currently executing.
    pub running: u64,
    /// Jobs finished (result available).
    pub done: u64,
    /// Submissions rejected by admission control since start.
    pub rejected: u64,
    /// Submissions served from the result cache since start.
    pub cache_hits: u64,
    /// Whether the daemon has stopped admitting work.
    pub draining: bool,
}

/// One daemon response, one line on the wire.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// The job was admitted (or already known / already cached).
    Accepted {
        /// Identity for status/result polling.
        job_id: String,
        /// The result is already available from the cache.
        cached: bool,
    },
    /// Admission control refused the job; try again later.
    Rejected {
        /// Why (queue full, client cap, draining).
        reason: String,
        /// Backpressure hint.
        retry_after_ms: u64,
    },
    /// A job's current state: `queued` | `running` | `done` | `failed`.
    JobStatus {
        /// The queried job.
        job_id: String,
        /// State tag.
        state: String,
    },
    /// A finished job's canonical result JSON (raw object).
    JobResult {
        /// The queried job.
        job_id: String,
        /// Byte-exact result document.
        result: String,
    },
    /// Daemon counters.
    Stats(ServiceStats),
    /// Drain acknowledged.
    Draining,
    /// Liveness reply.
    Pong,
    /// A structured error ([`error_kind`] tags plus `not_found` /
    /// `bad_request` / `io` for service-level failures).
    Error {
        /// Machine-readable failure class.
        kind: String,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// The structured form of a typed engine error.
    pub fn from_sim_error(e: &SimError) -> Response {
        Response::Error {
            kind: error_kind(e).to_string(),
            message: e.to_string(),
        }
    }

    /// Encode as one wire line (no trailing newline).
    pub fn to_line(&self) -> String {
        let esc = crate::campaign::esc;
        match self {
            Response::Accepted { job_id, cached } => format!(
                "{{\"status\":\"accepted\",\"job_id\":\"{}\",\"cached\":{cached}}}",
                esc(job_id)
            ),
            Response::Rejected {
                reason,
                retry_after_ms,
            } => format!(
                "{{\"status\":\"rejected\",\"reason\":\"{}\",\"retry_after_ms\":{retry_after_ms}}}",
                esc(reason)
            ),
            Response::JobStatus { job_id, state } => format!(
                "{{\"status\":\"job\",\"job_id\":\"{}\",\"state\":\"{}\"}}",
                esc(job_id),
                esc(state)
            ),
            Response::JobResult { job_id, result } => format!(
                "{{\"status\":\"result\",\"job_id\":\"{}\",\"result\":{result}}}",
                esc(job_id)
            ),
            Response::Stats(s) => format!(
                "{{\"status\":\"stats\",\"queued\":{},\"running\":{},\"done\":{},\
                 \"rejected\":{},\"cache_hits\":{},\"draining\":{}}}",
                s.queued, s.running, s.done, s.rejected, s.cache_hits, s.draining
            ),
            Response::Draining => "{\"status\":\"draining\"}".to_string(),
            Response::Pong => "{\"status\":\"pong\"}".to_string(),
            Response::Error { kind, message } => format!(
                "{{\"status\":\"error\",\"kind\":\"{}\",\"message\":\"{}\"}}",
                esc(kind),
                esc(message)
            ),
        }
    }

    /// Parse one wire line; `None` marks a malformed response.
    pub fn parse(line: &str) -> Option<Response> {
        match json_str(line, "status")?.as_str() {
            "accepted" => Some(Response::Accepted {
                job_id: json_str(line, "job_id")?,
                cached: json_bool(line, "cached")?,
            }),
            "rejected" => Some(Response::Rejected {
                reason: json_str(line, "reason")?,
                retry_after_ms: json_u64(line, "retry_after_ms")?,
            }),
            "job" => Some(Response::JobStatus {
                job_id: json_str(line, "job_id")?,
                state: json_str(line, "state")?,
            }),
            "result" => Some(Response::JobResult {
                job_id: json_str(line, "job_id")?,
                result: raw_tail(line, "result")?,
            }),
            "stats" => Some(Response::Stats(ServiceStats {
                queued: json_u64(line, "queued")?,
                running: json_u64(line, "running")?,
                done: json_u64(line, "done")?,
                rejected: json_u64(line, "rejected")?,
                cache_hits: json_u64(line, "cache_hits")?,
                draining: json_bool(line, "draining")?,
            })),
            "draining" => Some(Response::Draining),
            "pong" => Some(Response::Pong),
            "error" => Some(Response::Error {
                kind: json_str(line, "kind")?,
                message: json_str(line, "message")?,
            }),
            _ => None,
        }
    }
}

// ---- JSONL helpers for the daemon's journal --------------------------
//
// The daemon crate writes its job journal with the same hand-rolled
// JSON-line discipline as the campaign checkpoints; these thin public
// wrappers export the crate-private helpers across the crate boundary.

/// Extract the unsigned integer value of `"key"` from a JSONL line.
pub fn journal_json_u64(line: &str, key: &str) -> Option<u64> {
    json_u64(line, key)
}

/// Extract and unescape the string value of `"key"` from a JSONL line.
pub fn journal_json_str(line: &str, key: &str) -> Option<String> {
    json_str(line, key)
}

/// Escape a string for embedding in a JSONL line.
pub fn journal_esc(s: &str) -> String {
    crate::campaign::esc(s)
}

/// The raw JSON value of `"key"` when it is the last field of a JSONL
/// line's outer object — see [`raw_tail`]'s contract.
pub fn journal_raw_tail(line: &str, key: &str) -> Option<String> {
    raw_tail(line, key)
}

/// The raw JSON value of `"key"` when it is the **last** field of the
/// line's outer object: everything between `"key":` and the final `}`.
fn raw_tail(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let line = line.trim_end();
    line.strip_suffix('}')
        .map(|trimmed| trimmed[at..].to_string())
}

// ---- client ----------------------------------------------------------

/// A blocking one-request-per-connection client for the `minnetd`
/// wire protocol — what the `minnet submit|status|result|drain`
/// subcommands, the benches, and the integration tests use.
#[derive(Clone, Debug)]
pub struct ServiceClient {
    addr: String,
    timeout: Duration,
}

impl ServiceClient {
    /// A client for the daemon at `addr` (`host:port`) with a 30 s
    /// per-request timeout.
    pub fn new(addr: impl Into<String>) -> ServiceClient {
        ServiceClient {
            addr: addr.into(),
            timeout: Duration::from_secs(30),
        }
    }

    /// Override the per-request timeout.
    pub fn with_timeout(mut self, timeout: Duration) -> ServiceClient {
        self.timeout = timeout;
        self
    }

    /// Send one request and parse the response line.
    ///
    /// # Errors
    ///
    /// Connection/transport failures and unparsable responses, as
    /// human-readable strings; protocol-level failures arrive as
    /// [`Response::Error`] / [`Response::Rejected`] values, not `Err`.
    pub fn request(&self, req: &Request) -> Result<Response, String> {
        let mut stream = TcpStream::connect(&self.addr)
            .map_err(|e| format!("connecting to {}: {e}", self.addr))?;
        stream
            .set_read_timeout(Some(self.timeout))
            .and_then(|()| stream.set_write_timeout(Some(self.timeout)))
            .map_err(|e| format!("configuring socket: {e}"))?;
        let mut line = req.to_line();
        line.push('\n');
        stream
            .write_all(line.as_bytes())
            .map_err(|e| format!("sending to {}: {e}", self.addr))?;
        let mut reply = String::new();
        BufReader::new(stream)
            .read_line(&mut reply)
            .map_err(|e| format!("reading from {}: {e}", self.addr))?;
        if reply.is_empty() {
            return Err(format!("daemon at {} closed the connection", self.addr));
        }
        Response::parse(reply.trim_end())
            .ok_or_else(|| format!("unparsable response: {}", reply.trim_end()))
    }

    /// Submit a job under the given client identity.
    pub fn submit(&self, client: &str, spec: &JobSpec) -> Result<Response, String> {
        self.request(&Request::Submit {
            client: client.to_string(),
            spec: spec.clone(),
        })
    }

    /// Query a job's state.
    pub fn status(&self, job_id: &str) -> Result<Response, String> {
        self.request(&Request::Status {
            job_id: job_id.to_string(),
        })
    }

    /// Fetch a finished job's result.
    pub fn result(&self, job_id: &str) -> Result<Response, String> {
        self.request(&Request::Result {
            job_id: job_id.to_string(),
        })
    }

    /// Fetch the daemon counters.
    pub fn stats(&self) -> Result<ServiceStats, String> {
        match self.request(&Request::Stats)? {
            Response::Stats(s) => Ok(s),
            other => Err(format!("expected stats, got {other:?}")),
        }
    }

    /// Ask the daemon to stop admissions and finish in-flight work.
    pub fn drain(&self) -> Result<Response, String> {
        self.request(&Request::Drain)
    }

    /// Liveness probe.
    pub fn ping(&self) -> Result<(), String> {
        match self.request(&Request::Ping)? {
            Response::Pong => Ok(()),
            other => Err(format!("expected pong, got {other:?}")),
        }
    }

    /// Poll `status` until the job leaves the queue/run states, then
    /// fetch its result. Returns the raw result JSON.
    ///
    /// # Errors
    ///
    /// Transport failures, a `failed` job (its structured error,
    /// rendered), or `deadline` expiring first.
    pub fn wait_result(&self, job_id: &str, deadline: Duration) -> Result<String, String> {
        let start = std::time::Instant::now();
        loop {
            match self.result(job_id)? {
                Response::JobResult { result, .. } => return Ok(result),
                Response::JobStatus { state, .. }
                    if state == "queued" || state == "running" =>
                {
                    if start.elapsed() > deadline {
                        return Err(format!("job {job_id} still {state} after {deadline:?}"));
                    }
                    std::thread::sleep(Duration::from_millis(10));
                }
                Response::Error { kind, message } => {
                    return Err(format!("job {job_id} failed ({kind}): {message}"))
                }
                other => return Err(format!("unexpected result response: {other:?}")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_spec() -> JobSpec {
        JobSpec {
            sizes: "fixed:32".into(),
            loads: vec![0.15, 0.3],
            warmup: 500,
            measure: 3_000,
            seed: 7,
            budget_cycles: 100_000,
            ..JobSpec::default()
        }
    }

    #[test]
    fn spec_json_round_trips_bitwise() {
        let mut spec = quick_spec();
        spec.loads = vec![0.1, 1.0 / 3.0, 0.65];
        spec.pattern = "hotspot:0.05".into();
        let back = JobSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(spec, back);
        // The hash (job identity) survives the round trip exactly.
        assert_eq!(spec.job_hash().unwrap(), back.job_hash().unwrap());
    }

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Submit {
                client: "c\"1".into(),
                spec: quick_spec(),
            },
            Request::Status {
                job_id: "abc123".into(),
            },
            Request::Result {
                job_id: "abc123".into(),
            },
            Request::Stats,
            Request::Drain,
            Request::Ping,
        ];
        for r in reqs {
            let back = Request::parse(&r.to_line()).unwrap();
            assert_eq!(r, back);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Accepted {
                job_id: "x".into(),
                cached: true,
            },
            Response::Rejected {
                reason: "queue full (depth 4)".into(),
                retry_after_ms: 150,
            },
            Response::JobStatus {
                job_id: "x".into(),
                state: "running".into(),
            },
            Response::JobResult {
                job_id: "x".into(),
                result: "{\"v\":1,\"job_id\":\"x\",\"points\":[{\"task\":0}]}".into(),
            },
            Response::Stats(ServiceStats {
                queued: 1,
                running: 2,
                done: 3,
                rejected: 4,
                cache_hits: 5,
                draining: true,
            }),
            Response::Draining,
            Response::Pong,
            Response::Error {
                kind: "config".into(),
                message: "bad \"thing\"".into(),
            },
        ];
        for r in resps {
            let back = Response::parse(&r.to_line()).unwrap();
            assert_eq!(r, back);
        }
    }

    #[test]
    fn sim_errors_cross_the_wire_structured() {
        let e = SimError::Config("vcs must be positive".into());
        let line = Response::from_sim_error(&e).to_line();
        let Response::Error { kind, message } = Response::parse(&line).unwrap() else {
            panic!("expected error response");
        };
        assert_eq!(kind, "config");
        assert!(message.contains("vcs"));
        assert_eq!(error_kind(&SimError::Internal { what: "x" }), "internal");
        assert_eq!(
            error_kind(&SimError::Routing("no path".into())),
            "routing"
        );
    }

    #[test]
    fn invalid_specs_are_typed_config_errors() {
        let mut s = quick_spec();
        s.network = "ring".into();
        assert_eq!(error_kind(&s.to_experiment().unwrap_err()), "config");
        let mut s = quick_spec();
        s.loads = vec![];
        assert!(s.to_experiment().is_err());
        let mut s = quick_spec();
        s.loads = vec![-0.5];
        assert!(s.to_experiment().is_err());
        let mut s = quick_spec();
        s.pattern = "nope".into();
        assert!(s.to_experiment().is_err());
    }

    #[test]
    fn run_job_is_byte_deterministic() {
        let spec = quick_spec();
        let a = run_job(&spec, None, 2).unwrap();
        let b = run_job(&spec, None, 1).unwrap();
        assert_eq!(a, b, "thread count or repetition changed result bytes");
        assert!(a.contains(&format!("\"job_id\":\"{}\"", spec.job_id().unwrap())));
        assert!(a.contains("\"outcome\":\"ok\""));
    }

    #[test]
    fn chaos_panics_are_isolated_and_retried_on_derived_seeds() {
        let mut spec = quick_spec();
        spec.chaos_panic_attempts = 1;
        spec.retries = 2;
        let chaotic = run_job(&spec, None, 2).unwrap();
        // Every point spent the chaos attempt and recovered.
        assert!(chaotic.contains("\"attempts\":2"));
        assert!(!chaotic.contains("\"outcome\":\"failed\""));
        // Chaos participates in the job identity: the recovered curve is
        // its own job, not a cache alias of the calm one.
        let calm = {
            let mut s = spec.clone();
            s.chaos_panic_attempts = 0;
            s.retries = 0;
            s
        };
        assert_ne!(spec.job_id().unwrap(), calm.job_id().unwrap());
        // Unrecoverable chaos: more injected panics than retries fails
        // every point but still completes the job.
        let mut doomed = quick_spec();
        doomed.chaos_panic_attempts = 3;
        doomed.retries = 1;
        let out = run_job(&doomed, None, 1).unwrap();
        assert!(out.contains("\"outcome\":\"failed\""));
        assert!(out.contains("chaos: injected panic"));
    }

    #[test]
    fn run_job_resumes_from_checkpoint_byte_identically() {
        let spec = quick_spec();
        let dir = std::env::temp_dir().join(format!(
            "minnet_service_ckpt_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let ckpt = dir.join("job.ckpt.jsonl");
        let _ = std::fs::remove_file(&ckpt);
        let uninterrupted = run_job(&spec, None, 1).unwrap();
        let first = run_job(&spec, Some(ckpt.clone()), 1).unwrap();
        assert_eq!(uninterrupted, first);
        // Simulate a kill after the first point: drop the last line.
        let full = std::fs::read_to_string(&ckpt).unwrap();
        let keep: String = full.split_inclusive('\n').take(2).collect();
        std::fs::write(&ckpt, keep).unwrap();
        let resumed = run_job(&spec, Some(ckpt.clone()), 1).unwrap();
        assert_eq!(uninterrupted, resumed, "resume changed result bytes");
        let _ = std::fs::remove_file(&ckpt);
        let _ = std::fs::remove_dir(&dir);
    }
}
