//! `minnet` — command-line front end for the wormhole-MIN simulator.
//!
//! ```text
//! minnet info     --network bmin --k 4 --n 3
//! minnet simulate --network dmin --load 0.5
//! minnet sweep    --network vmin --loads 0.1,0.3,0.5,0.7 --csv out.csv
//! minnet saturate --network tmin --pattern hotspot:0.05
//! minnet partition --wiring butterfly --clusters msd
//! ```
//!
//! Run `minnet help` for the full option list.

use minnet::routing::{dependency_graph, find_cycle, DependencyRule};
use minnet::partition::UnidirPartitionAnalysis;
use minnet::traffic::{Clustering, MessageSizeDist, TrafficPattern};
use minnet::{
    campaign_curve, campaign_saturation_load, curve_csv, curve_table, find_saturation,
    outcome_counts, CampaignPolicy, Experiment, JobSpec, NetworkSpec, PointOutcome, Response,
    ServiceClient, SweepPoint,
};
use minnet_topology::{BitCube, Geometry, UnidirKind};
use std::collections::BTreeMap;

fn usage() -> ! {
    println!(
        "minnet — switch-based wormhole network simulator (Ni, Gui & Moore reproduction)

USAGE: minnet <command> [options]

COMMANDS
  info        print network facts (channels, switches, paths, deadlock check)
  simulate    one run at a fixed offered load
  sweep       latency-throughput curve over several loads
  saturate    bisection search for the maximum sustainable load
  partition   static partitionability analysis (contention / balance)
  scenario    run|list|validate declarative .scn scenario files
  submit      send a sweep job to a minnetd service daemon
  status      ask the daemon for a job's state (queued|running|done|failed)
  result      fetch a finished job's result JSON from the daemon
  drain       ask the daemon to close admissions and finish its backlog
  help        this text

SERVICE (minnetd client; see `minnetd --help` to run the daemon)
  minnet submit [experiment options] [--daemon HOST:PORT] [--client NAME]
                [--wait] [--timeout-ms N] [--json PATH]
  minnet status <job-id> [--daemon HOST:PORT]
  minnet result <job-id> [--daemon HOST:PORT] [--json PATH]
  minnet drain            [--daemon HOST:PORT]
The daemon address defaults to 127.0.0.1:7117. `submit` prints the
job id (the FNV hash of the full job config — identical submissions
share one id and are served from the result cache, byte-identical).
--wait polls until the job finishes and prints the result JSON.

SCENARIOS
  minnet scenario run scenarios/ [--chaos] [--json PATH]
                 [--threads N] [--retries N] [--checkpoint-dir DIR]
                 [--budget-cycles N] [--budget-ms N]
  minnet scenario list scenarios/
  minnet scenario validate scenarios/
Each .scn file declares a network, workload, fault/chaos schedule and
expectations; `run` judges them into pass/partial/fail verdicts and
exits 0 only if every scenario ends as its file declares (a
watchdog-trip fixture *expects* fail). Chaos-gated scenarios are
skipped unless --chaos. --json writes the deterministic verdict
report (byte-identical across repeat runs and thread counts).

COMMON OPTIONS
  --network tmin|dmin|vmin|bmin     network design           [tmin]
  --wiring cube|butterfly|omega|baseline   unidirectional wiring [cube]
  --dilation N     DMIN dilation                             [2]
  --vcs N          VMIN virtual channels                     [2]
  --k N --n N      geometry (N = k^n nodes)                  [4, 3]
  --pattern uniform|hotspot:<x>|shuffle|butterfly:<i>        [uniform]
  --clusters global|msd|lsd|halves   node clustering         [global]
  --rates a,b,..   per-cluster relative rates
  --sizes paper|fixed:<len>|bimodal:<s>,<l>,<p>              [paper]
  --load F         offered load (simulate)                   [0.5]
  --loads a,b,..   offered loads (sweep)                     [0.1..0.9]
  --warmup N --measure N --seed N --buffer-depth N --threads N
  --csv PATH       also write the sweep as CSV

RESILIENCE (sweep, saturate)
  --budget-cycles N   cut any run at N simulated cycles (0 = off)  [0]
  --budget-ms N       cut any run at N wall-clock ms (0 = off)     [0]
  --retries N         same-point retries after a failed run        [0]
  --checkpoint PATH   append finished sweep points to a JSONL
                      checkpoint (creates it, or resumes if present)
  --resume PATH       like --checkpoint but the file must exist
A budget-cut point is reported PARTIAL (its truncated stats are kept);
a panicking or erroring point is reported FAILED after retries. The
curve always completes with per-point outcomes."
    );
    std::process::exit(2);
}

struct Args {
    cmd: String,
    opts: BTreeMap<String, String>,
    /// Positional arguments (the `scenario` family takes an action and
    /// scenario files/directories).
    free: Vec<String>,
}

/// Options that are bare flags — present or absent, no value.
const BOOL_FLAGS: &[&str] = &["chaos", "wait"];

fn parse_args() -> Args {
    let mut it = std::env::args().skip(1);
    let cmd = it.next().unwrap_or_else(|| "help".into());
    let mut opts = BTreeMap::new();
    let mut free = Vec::new();
    while let Some(key) = it.next() {
        let Some(name) = key.strip_prefix("--") else {
            free.push(key);
            continue;
        };
        if BOOL_FLAGS.contains(&name) {
            opts.insert(name.to_string(), "true".to_string());
            continue;
        }
        let Some(value) = it.next() else {
            eprintln!("--{name} needs a value");
            usage();
        };
        opts.insert(name.to_string(), value);
    }
    Args { cmd, opts, free }
}

fn parse_f64(a: &Args, key: &str, default: f64) -> f64 {
    a.opts
        .get(key)
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--{key}: {e}"))))
        .unwrap_or(default)
}

fn parse_u64(a: &Args, key: &str, default: u64) -> u64 {
    a.opts
        .get(key)
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--{key}: {e}"))))
        .unwrap_or(default)
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(1);
}

fn wiring(a: &Args) -> UnidirKind {
    match a.opts.get("wiring").map(String::as_str) {
        None | Some("cube") => UnidirKind::Cube,
        Some("butterfly") => UnidirKind::Butterfly,
        Some("omega") => UnidirKind::Omega,
        Some("baseline") => UnidirKind::Baseline,
        Some(other) => die(&format!("unknown wiring {other:?}")),
    }
}

fn network(a: &Args) -> NetworkSpec {
    let w = wiring(a);
    match a.opts.get("network").map(String::as_str) {
        None | Some("tmin") => NetworkSpec::Tmin(w),
        Some("dmin") => NetworkSpec::Dmin(w, parse_u64(a, "dilation", 2) as u8),
        Some("vmin") => NetworkSpec::Vmin(w, parse_u64(a, "vcs", 2) as u8),
        Some("bmin") => NetworkSpec::Bmin,
        Some(other) => die(&format!("unknown network {other:?}")),
    }
}

fn geometry(a: &Args) -> Geometry {
    Geometry::new(parse_u64(a, "k", 4) as u32, parse_u64(a, "n", 3) as u32)
}

fn pattern(a: &Args) -> TrafficPattern {
    match a.opts.get("pattern").map(String::as_str) {
        None | Some("uniform") => TrafficPattern::Uniform,
        Some("shuffle") => TrafficPattern::SHUFFLE,
        Some(p) => {
            if let Some(x) = p.strip_prefix("hotspot:") {
                TrafficPattern::HotSpot {
                    extra: x.parse().unwrap_or_else(|e| die(&format!("hotspot: {e}"))),
                }
            } else if let Some(i) = p.strip_prefix("butterfly:") {
                TrafficPattern::butterfly(
                    i.parse().unwrap_or_else(|e| die(&format!("butterfly: {e}"))),
                )
            } else {
                die(&format!("unknown pattern {p:?}"))
            }
        }
    }
}

fn clustering(a: &Args, g: &Geometry) -> Clustering {
    let msd_or_lsd = |fix_msd: bool| -> Clustering {
        let free = std::iter::repeat_n('X', g.n() as usize - 1).collect::<String>();
        let pats: Vec<String> = (0..g.k())
            .map(|v| {
                if fix_msd {
                    format!("{v}{free}")
                } else {
                    format!("{free}{v}")
                }
            })
            .collect();
        let refs: Vec<&str> = pats.iter().map(String::as_str).collect();
        Clustering::cubes_from_patterns(g, &refs).unwrap_or_else(|e| die(&e))
    };
    match a.opts.get("clusters").map(String::as_str) {
        None | Some("global") => Clustering::Global,
        Some("msd") => msd_or_lsd(true),
        Some("lsd") => msd_or_lsd(false),
        Some("halves") => {
            if !g.k().is_power_of_two() {
                die("--clusters halves needs k to be a power of two");
            }
            let bits = g.n() * g.k().trailing_zeros();
            let top = 1u32 << (bits - 1);
            Clustering::BitCubes(vec![BitCube::new(g, top, 0), BitCube::new(g, top, top)])
        }
        Some(other) => die(&format!("unknown clustering {other:?}")),
    }
}

fn sizes(a: &Args) -> MessageSizeDist {
    match a.opts.get("sizes").map(String::as_str) {
        None | Some("paper") => MessageSizeDist::PAPER,
        Some(s) => {
            if let Some(len) = s.strip_prefix("fixed:") {
                MessageSizeDist::Fixed(len.parse().unwrap_or_else(|e| die(&format!("fixed: {e}"))))
            } else if let Some(rest) = s.strip_prefix("bimodal:") {
                let parts: Vec<&str> = rest.split(',').collect();
                if parts.len() != 3 {
                    die("bimodal needs short,long,p_short");
                }
                MessageSizeDist::Bimodal {
                    short: parts[0].parse().unwrap_or_else(|e| die(&format!("{e}"))),
                    long: parts[1].parse().unwrap_or_else(|e| die(&format!("{e}"))),
                    p_short: parts[2].parse().unwrap_or_else(|e| die(&format!("{e}"))),
                }
            } else {
                die(&format!("unknown sizes {s:?}"))
            }
        }
    }
}

fn experiment(a: &Args) -> Experiment {
    let g = geometry(a);
    let mut exp = Experiment {
        geometry: g,
        network: network(a),
        pattern: pattern(a),
        clustering: clustering(a, &g),
        rates: a.opts.get("rates").map(|r| {
            r.split(',')
                .map(|x| x.parse().unwrap_or_else(|e| die(&format!("rates: {e}"))))
                .collect()
        }),
        sizes: sizes(a),
        sim: Default::default(),
    };
    exp.sim.warmup = parse_u64(a, "warmup", 20_000);
    exp.sim.measure = parse_u64(a, "measure", 100_000);
    exp.sim.seed = parse_u64(a, "seed", exp.sim.seed);
    exp.sim.buffer_depth = parse_u64(a, "buffer-depth", 1) as u16;
    exp.sim.budget.max_cycles = parse_u64(a, "budget-cycles", 0);
    exp.sim.budget.max_wall_ms = parse_u64(a, "budget-ms", 0);
    exp
}

/// The campaign policy from `--retries` / `--checkpoint` / `--resume`.
fn policy(a: &Args) -> CampaignPolicy {
    let checkpoint = a.opts.get("checkpoint");
    let resume = a.opts.get("resume");
    if checkpoint.is_some() && resume.is_some() {
        die("--checkpoint and --resume are mutually exclusive (--resume is \
             --checkpoint that refuses to start a fresh file)");
    }
    CampaignPolicy {
        retries: parse_u64(a, "retries", 0) as u32,
        checkpoint: checkpoint.or(resume).map(Into::into),
        require_existing: resume.is_some(),
    }
}

fn threads(a: &Args) -> usize {
    a.opts
        .get("threads")
        .map(|v| v.parse().unwrap_or_else(|e| die(&format!("--threads: {e}"))))
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

fn cmd_info(a: &Args) {
    let exp = experiment(a);
    let net = exp.network.build(exp.geometry);
    println!("network    : {}", exp.network.name());
    println!(
        "geometry   : {} nodes, {}x{} switches, {} stages",
        exp.geometry.nodes(),
        exp.geometry.k(),
        exp.geometry.k(),
        exp.geometry.n()
    );
    println!("switches   : {}", net.num_switches());
    println!("channels   : {}", net.num_channels());
    let adj = dependency_graph(&net, DependencyRule::Paper);
    println!(
        "deadlock   : {}",
        if find_cycle(&adj).is_none() {
            "free (acyclic channel dependency graph)"
        } else {
            "CYCLE FOUND"
        }
    );
    let bidir = net.kind.is_bidirectional();
    println!(
        "mean path  : {:.2} channels (uniform pairs)",
        if bidir {
            2.0 * (minnet::model::mean_first_difference(&exp.geometry) + 1.0)
        } else {
            (exp.geometry.n() + 1) as f64
        }
    );
    println!(
        "unloaded   : {:.1} us mean latency for paper-sized messages",
        minnet::model::mean_unloaded_latency(&exp.geometry, bidir, exp.sizes.mean())
            * minnet::sim::CYCLE_US
    );
}

fn cmd_simulate(a: &Args) {
    let exp = experiment(a);
    let load = parse_f64(a, "load", 0.5);
    let r = exp.run(load).unwrap_or_else(|e| die(&e));
    println!("network   : {}", exp.network.name());
    println!("offered   : {:.1}%", load * 100.0);
    println!("accepted  : {:.2}%", r.throughput_percent());
    println!(
        "latency   : mean {:.1} us   p50 {:.1}   p95 {:.1}   p99 {:.1}   max {:.1}",
        r.mean_latency_us(),
        r.p50_latency_cycles as f64 * minnet::sim::CYCLE_US,
        r.p95_latency_cycles as f64 * minnet::sim::CYCLE_US,
        r.p99_latency_cycles as f64 * minnet::sim::CYCLE_US,
        r.max_latency_cycles as f64 * minnet::sim::CYCLE_US,
    );
    println!("queueing  : mean {:.1} msgs, max {}", r.mean_queue, r.max_queue);
    println!(
        "verdict   : {}",
        match (r.sustainable, r.steady) {
            (true, true) => "sustainable",
            (true, false) => "lagging (delivery behind generation)",
            _ => "SATURATED (queue limit exceeded)",
        }
    );
}

fn cmd_sweep(a: &Args) {
    let exp = experiment(a);
    let loads: Vec<f64> = match a.opts.get("loads") {
        Some(l) => l
            .split(',')
            .map(|x| x.parse().unwrap_or_else(|e| die(&format!("loads: {e}"))))
            .collect(),
        None => (1..=9).map(|i| i as f64 / 10.0).collect(),
    };
    let points = campaign_curve(&exp, &loads, threads(a), &policy(a)).unwrap_or_else(|e| die(&e));

    // The classic table over the points that completed; Partial/Failed
    // points are listed separately so truncated stats are never mixed
    // silently into the curve.
    let completed: Vec<SweepPoint> = points
        .iter()
        .filter_map(|p| {
            p.outcome.ok_report().map(|r| SweepPoint {
                offered: p.offered,
                report: r.clone(),
            })
        })
        .collect();
    print!("{}", curve_table(&exp.network.name(), &completed));
    for p in &points {
        match &p.outcome {
            PointOutcome::Ok(_) => {}
            PointOutcome::Partial { report, reason } => println!(
                "  load {:.0}%: PARTIAL after {} cycles ({reason}) — accepted {:.2}% so far",
                p.offered * 100.0,
                report.cycles,
                report.throughput_percent()
            ),
            PointOutcome::Failed { reason } => println!(
                "  load {:.0}%: FAILED after {} attempt(s): {reason}",
                p.offered * 100.0,
                p.attempts
            ),
        }
    }
    let (ok, partial, failed) = outcome_counts(points.iter().map(|p| &p.outcome));
    println!("outcomes: {ok} ok, {partial} partial, {failed} failed");
    if let Some(sat) = campaign_saturation_load(&points) {
        let report = sat.outcome.ok_report().expect("saturation point is Ok");
        println!(
            "max sustainable throughput: {:.1}% (offered {:.0}%)",
            report.throughput_percent(),
            sat.offered * 100.0
        );
    }
    if let Some(path) = a.opts.get("csv") {
        std::fs::write(path, curve_csv(&exp.network.name(), &completed))
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("wrote {path}");
    }
}

fn cmd_saturate(a: &Args) {
    let exp = experiment(a);
    let lo = parse_f64(a, "lo", 0.05);
    let hi = parse_f64(a, "hi", 1.0);
    let iters = parse_u64(a, "iters", 6) as u32;
    match find_saturation(&exp, lo, hi, iters).unwrap_or_else(|e| die(&e)) {
        Some(p) => println!(
            "{}: sustainable up to offered {:.1}% — accepted {:.1}%, mean latency {:.1} us",
            exp.network.name(),
            p.offered * 100.0,
            p.report.throughput_percent(),
            p.report.mean_latency_us()
        ),
        None => println!("{}: already saturated at {:.1}%", exp.network.name(), lo * 100.0),
    }
}

fn cmd_partition(a: &Args) {
    let g = geometry(a);
    let kind = wiring(a);
    let clustering = clustering(a, &g);
    let map = minnet::traffic::ClusterMap::build(&g, &clustering).unwrap_or_else(|e| die(&e));
    let clusters: Vec<Vec<u32>> = map.members.clone();
    let analysis = UnidirPartitionAnalysis::analyze(g, kind, &clusters);
    println!(
        "wiring {kind:?}, {} clusters over {} nodes",
        clusters.len(),
        g.nodes()
    );
    for (ci, members) in clusters.iter().enumerate() {
        let counts: Vec<usize> = (0..=g.n()).map(|l| analysis.channels_used(ci, l)).collect();
        println!(
            "  cluster {ci} ({} nodes): channels/level {:?}{}",
            members.len(),
            counts,
            if analysis.is_channel_balanced(ci) {
                "  [balanced]"
            } else {
                "  [NOT balanced]"
            }
        );
    }
    let shared = analysis.shared_positions();
    if shared.is_empty() {
        println!("  contention-free: yes");
    } else {
        println!("  contention-free: NO — {} shared channels", shared.len());
    }
}

/// The scenario files named by the positional arguments (after the
/// action), defaulting to the `scenarios/` library directory.
fn scenario_paths(a: &Args) -> Vec<std::path::PathBuf> {
    let roots: Vec<&str> = if a.free.len() > 1 {
        a.free[1..].iter().map(String::as_str).collect()
    } else {
        vec!["scenarios"]
    };
    let mut files = Vec::new();
    for root in roots {
        files.extend(
            minnet::scenario_files(std::path::Path::new(root)).unwrap_or_else(|e| die(&e)),
        );
    }
    files
}

fn cmd_scenario(a: &Args) {
    let action = a.free.first().map(String::as_str).unwrap_or_else(|| {
        eprintln!("scenario needs an action: run, list, or validate");
        usage();
    });
    let files = scenario_paths(a);
    match action {
        "list" | "validate" => {
            let mut bad = 0usize;
            for path in &files {
                match minnet::Scenario::load(path) {
                    Ok(s) => {
                        let mut tags = Vec::new();
                        if s.expected_verdict() != minnet::VerdictStatus::Pass {
                            tags.push(format!("expects {}", s.expected_verdict().as_str()));
                        }
                        if s.is_chaos_opt_in() {
                            tags.push("chaos-gated".to_string());
                        }
                        let tags = if tags.is_empty() {
                            String::new()
                        } else {
                            format!(" [{}]", tags.join(", "))
                        };
                        println!("{:30} {}{tags}", s.name(), s.description());
                    }
                    Err(e) => {
                        bad += 1;
                        eprintln!("INVALID {}: {e}", path.display());
                    }
                }
            }
            if bad > 0 {
                die(&format!("{bad} invalid scenario file(s)"));
            }
            if action == "validate" {
                println!("{} scenario file(s) valid", files.len());
            }
        }
        "run" => {
            let include_chaos = a.opts.contains_key("chaos");
            let retries = parse_u64(a, "retries", 0) as u32;
            let ckpt_dir = a.opts.get("checkpoint-dir").map(std::path::PathBuf::from);
            if let Some(d) = &ckpt_dir {
                std::fs::create_dir_all(d)
                    .unwrap_or_else(|e| die(&format!("creating {}: {e}", d.display())));
            }
            let budget = minnet_sim::RunBudget {
                max_cycles: parse_u64(a, "budget-cycles", 0),
                max_wall_ms: parse_u64(a, "budget-ms", 0),
            };
            let set = minnet::run_scenario_files_with_budget(
                &files,
                threads(a),
                retries,
                include_chaos,
                ckpt_dir.as_deref(),
                (!budget.is_unlimited()).then_some(budget),
            )
            .unwrap_or_else(|e| die(&e));
            for v in &set.verdicts {
                println!("{v}");
            }
            for name in &set.skipped {
                println!("SKIP {name} (chaos-gated; rerun with --chaos)");
            }
            let as_expected = set.all_as_expected();
            println!(
                "{} scenario(s): {} as declared, {} surprising, {} skipped",
                set.verdicts.len(),
                set.verdicts.iter().filter(|v| v.as_expected()).count(),
                set.verdicts.iter().filter(|v| !v.as_expected()).count(),
                set.skipped.len()
            );
            if let Some(path) = a.opts.get("json") {
                std::fs::write(path, minnet::verdict_report_json(&set))
                    .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
                println!("wrote {path}");
            }
            if !as_expected {
                std::process::exit(1);
            }
        }
        other => {
            eprintln!("unknown scenario action {other:?} (run, list, validate)");
            usage();
        }
    }
}

/// The service client for `--daemon` (default: minnetd's well-known
/// local port).
fn service_client(a: &Args) -> ServiceClient {
    let addr = a
        .opts
        .get("daemon")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:7117".to_string());
    ServiceClient::new(addr)
}

/// A [`JobSpec`] from the same experiment options the local commands
/// take; unset options keep the paper defaults. Validation happens on
/// the daemon, which answers structured `config` errors.
fn job_spec(a: &Args) -> JobSpec {
    let mut spec = JobSpec::default();
    if let Some(v) = a.opts.get("network") {
        spec.network = v.clone();
    }
    if let Some(v) = a.opts.get("wiring") {
        spec.wiring = v.clone();
    }
    spec.dilation = parse_u64(a, "dilation", u64::from(spec.dilation)) as u8;
    spec.vcs = parse_u64(a, "vcs", u64::from(spec.vcs)) as u8;
    spec.k = parse_u64(a, "k", u64::from(spec.k)) as u32;
    spec.n = parse_u64(a, "n", u64::from(spec.n)) as u32;
    if let Some(v) = a.opts.get("pattern") {
        spec.pattern = v.clone();
    }
    if let Some(v) = a.opts.get("sizes") {
        spec.sizes = v.clone();
    }
    if let Some(l) = a.opts.get("loads") {
        spec.loads = l
            .split(',')
            .map(|x| x.parse().unwrap_or_else(|e| die(&format!("loads: {e}"))))
            .collect();
    }
    spec.warmup = parse_u64(a, "warmup", spec.warmup);
    spec.measure = parse_u64(a, "measure", spec.measure);
    spec.seed = parse_u64(a, "seed", spec.seed);
    spec.budget_cycles = parse_u64(a, "budget-cycles", 0);
    spec.budget_ms = parse_u64(a, "budget-ms", 0);
    spec.retries = parse_u64(a, "retries", 0) as u32;
    spec
}

/// The job id for `status`/`result`: positional or `--job`.
fn job_id_arg(a: &Args) -> String {
    a.opts
        .get("job")
        .cloned()
        .or_else(|| a.free.first().cloned())
        .unwrap_or_else(|| die("give a job id (positional, or --job ID)"))
}

/// Print a result JSON to stdout, or to `--json PATH` when given.
fn emit_result(a: &Args, result: &str) {
    if let Some(path) = a.opts.get("json") {
        std::fs::write(path, format!("{result}\n"))
            .unwrap_or_else(|e| die(&format!("writing {path}: {e}")));
        println!("wrote {path}");
    } else {
        println!("{result}");
    }
}

fn cmd_submit(a: &Args) {
    let client = service_client(a);
    let name = a
        .opts
        .get("client")
        .cloned()
        .unwrap_or_else(|| "minnet-cli".to_string());
    match client.submit(&name, &job_spec(a)).unwrap_or_else(|e| die(&e)) {
        Response::Accepted { job_id, cached } => {
            eprintln!(
                "accepted {job_id}{}",
                if cached { " (cached)" } else { "" }
            );
            if a.opts.contains_key("wait") {
                let deadline =
                    std::time::Duration::from_millis(parse_u64(a, "timeout-ms", 300_000));
                let result = client.wait_result(&job_id, deadline).unwrap_or_else(|e| die(&e));
                emit_result(a, &result);
            } else {
                println!("{job_id}");
            }
        }
        Response::Rejected {
            reason,
            retry_after_ms,
        } => die(&format!("rejected: {reason} (retry after {retry_after_ms} ms)")),
        Response::Error { kind, message } => die(&format!("[{kind}] {message}")),
        other => die(&format!("unexpected response: {other:?}")),
    }
}

fn cmd_status(a: &Args) {
    let client = service_client(a);
    match client.status(&job_id_arg(a)).unwrap_or_else(|e| die(&e)) {
        Response::JobStatus { job_id, state } => println!("{job_id}: {state}"),
        Response::Error { kind, message } => die(&format!("[{kind}] {message}")),
        other => die(&format!("unexpected response: {other:?}")),
    }
}

fn cmd_result(a: &Args) {
    let client = service_client(a);
    match client.result(&job_id_arg(a)).unwrap_or_else(|e| die(&e)) {
        Response::JobResult { result, .. } => emit_result(a, &result),
        Response::JobStatus { job_id, state } => {
            die(&format!("{job_id} is not finished (state: {state})"))
        }
        Response::Error { kind, message } => die(&format!("[{kind}] {message}")),
        other => die(&format!("unexpected response: {other:?}")),
    }
}

fn cmd_drain(a: &Args) {
    let client = service_client(a);
    match client.drain().unwrap_or_else(|e| die(&e)) {
        Response::Draining => {
            println!("draining: admissions closed, accepted backlog finishing")
        }
        other => die(&format!("unexpected response: {other:?}")),
    }
}

fn main() {
    let args = parse_args();
    let takes_free = matches!(args.cmd.as_str(), "scenario" | "status" | "result");
    if !takes_free && !args.free.is_empty() {
        die(&format!("unexpected argument {:?}", args.free[0]));
    }
    match args.cmd.as_str() {
        "info" => cmd_info(&args),
        "simulate" => cmd_simulate(&args),
        "sweep" => cmd_sweep(&args),
        "saturate" => cmd_saturate(&args),
        "partition" => cmd_partition(&args),
        "scenario" => cmd_scenario(&args),
        "submit" => cmd_submit(&args),
        "status" => cmd_status(&args),
        "result" => cmd_result(&args),
        "drain" => cmd_drain(&args),
        _ => usage(),
    }
}
