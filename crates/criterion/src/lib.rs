//! Vendored stand-in for the `criterion` benchmark harness.
//!
//! The real crate is unavailable in this offline build environment; this
//! shim keeps every `[[bench]]` target compiling and producing useful
//! numbers. Each benchmark runs a short warm-up, then `sample_size` timed
//! samples of one iteration batch each, and prints min / median / mean
//! wall-clock time per iteration. There are no statistical comparisons,
//! plots, or saved baselines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new<F: Display, P: Display>(function_name: F, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to the benchmark closure; [`Bencher::iter`] times the routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    iters_per_sample: u64,
}

impl Bencher {
    /// Time `routine`, recording `sample_size` samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up and batch sizing: aim for samples of at least ~20 ms or
        // a single iteration, whichever is larger.
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(20);
        self.iters_per_sample = (target.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    fn report(&self, name: &str) {
        if self.samples.is_empty() {
            println!("{name:<56} (no samples)");
            return;
        }
        let per_iter: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_secs_f64() / self.iters_per_sample as f64)
            .collect();
        let mut sorted = per_iter.clone();
        sorted.sort_by(f64::total_cmp);
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name:<56} min {:>12} med {:>12} mean {:>12} ({} samples x {} iters)",
            fmt_time(min),
            fmt_time(median),
            fmt_time(mean),
            self.samples.len(),
            self.iters_per_sample,
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 2).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmark `routine` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Display, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            routine(b)
        });
        self
    }

    /// Benchmark `routine` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&format!("{}/{}", self.name, id), self.sample_size, |b| {
            routine(b, input)
        });
        self
    }

    /// End the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, sample_size: usize, mut routine: F) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
        iters_per_sample: 1,
    };
    routine(&mut b);
    b.report(name);
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
        }
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, 10, |b| routine(b));
        self
    }
}

/// Bundle benchmark functions into a group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); accept
            // and ignore them.
            let _args: Vec<String> = std::env::args().collect();
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(c: &mut Criterion) {
        let mut g = c.benchmark_group("toy");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| black_box(x) * 2)
        });
        g.finish();
    }

    criterion_group!(toy_group, toy);

    #[test]
    fn harness_runs() {
        toy_group();
        let mut c = Criterion::default();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
