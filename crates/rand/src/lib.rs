//! Vendored stand-in for the `rand` crate.
//!
//! The workspace pins `rand = "0.10"` but builds in an offline container,
//! so this path crate provides the (small) API surface the simulator
//! actually uses:
//!
//! * [`rngs::SmallRng`] — xoshiro256++ seeded via SplitMix64, the same
//!   algorithm family the real `SmallRng` uses on 64-bit targets;
//! * [`SeedableRng::seed_from_u64`] — equal seeds reproduce runs exactly;
//! * [`Rng`] — the core generator trait (`next_u32` / `next_u64`);
//! * [`RngExt`] — `random::<T>()` and `random_range(..)` conveniences.
//!
//! Determinism is the contract that matters here: every generator is a
//! pure function of its seed, with no global state, OS entropy, or
//! platform-dependent behaviour. The simulation engine's reproducibility
//! guarantee (same seed + build ⇒ identical `SimReport`) rests on it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// A random-number generator: an infinite deterministic stream of words.
pub trait Rng {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types a generator can produce via [`RngExt::random`].
pub trait Standard: Sized {
    /// Draw one value from the type's standard distribution.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform on `[0, 1)` with 53 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    /// Uniform on `[0, 1)` with 24 bits of precision.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform sampling below a bound, unbiased (Lemire multiply-shift with
/// rejection). `span` must be nonzero.
fn below<R: Rng + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let lo = m as u64;
        if lo < span {
            // Threshold = 2^64 mod span; reject the biased low zone.
            let t = span.wrapping_neg() % span;
            if lo < t {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

/// Integer types usable with [`RngExt::random_range`].
pub trait UniformInt: Copy {
    /// Widen to the sampling domain.
    fn to_u64(self) -> u64;
    /// Narrow back from the sampling domain.
    fn from_u64(x: u64) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(x: u64) -> Self {
                x as $t
            }
        }
    )*};
}

uniform_int!(u8, u16, u32, u64, usize);

/// Ranges accepted by [`RngExt::random_range`].
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: UniformInt> SampleRange for Range<T> {
    type Output = T;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start.to_u64(), self.end.to_u64());
        assert!(lo < hi, "cannot sample from empty range");
        T::from_u64(lo + below(rng, hi - lo))
    }
}

impl<T: UniformInt> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (self.start().to_u64(), self.end().to_u64());
        assert!(lo <= hi, "cannot sample from empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + below(rng, span + 1))
    }
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u: f64 = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience draws on any [`Rng`].
pub trait RngExt: Rng {
    /// Draw a value from the type's standard distribution (`f64`/`f32`
    /// uniform on `[0, 1)`, integers over their full domain, fair bools).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draw a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<Rg: SampleRange>(&mut self, range: Rg) -> Rg::Output {
        range.sample_from(self)
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256++ with
    /// SplitMix64 seed expansion. Not cryptographically secure.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            let s = [
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
                splitmix64(&mut st),
            ];
            SmallRng { s }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0
                .wrapping_add(s3)
                .rotate_left(23)
                .wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn equal_seeds_reproduce() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f64_is_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut r = SmallRng::seed_from_u64(9);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let x: usize = r.random_range(0..5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..5 appear: {seen:?}");
        for _ in 0..1000 {
            let x: u32 = r.random_range(3..=4);
            assert!(x == 3 || x == 4);
        }
        for _ in 0..1000 {
            let x = r.random_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&x));
        }
    }

    #[test]
    fn uniformity_is_rough_but_sane() {
        let mut r = SmallRng::seed_from_u64(11);
        let trials = 60_000u32;
        let mut counts = [0u32; 6];
        for _ in 0..trials {
            counts[r.random_range(0..6usize)] += 1;
        }
        for &c in &counts {
            let frac = f64::from(c) / f64::from(trials);
            assert!((frac - 1.0 / 6.0).abs() < 0.01, "skewed: {counts:?}");
        }
    }
}
