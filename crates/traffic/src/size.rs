//! Message-size distributions.
//!
//! The paper gives every message "an equal probability of being one packet
//! between eight to 1,024 flits" and lists "long, short, and bimodal
//! message sizes" as future work; all three are implemented here.

use rand::{Rng, RngExt};

/// Distribution of message lengths, in flits.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum MessageSizeDist {
    /// Uniform over `[min, max]` inclusive.
    UniformRange {
        /// Smallest message, flits.
        min: u32,
        /// Largest message, flits.
        max: u32,
    },
    /// Every message has exactly this many flits.
    Fixed(u32),
    /// A mix of short and long messages.
    Bimodal {
        /// Length of a short message.
        short: u32,
        /// Length of a long message.
        long: u32,
        /// Probability of drawing a short message.
        p_short: f64,
    },
}

impl MessageSizeDist {
    /// The paper's distribution: uniform over 8..=1024 flits.
    pub const PAPER: MessageSizeDist = MessageSizeDist::UniformRange { min: 8, max: 1024 };

    /// Mean message length in flits.
    pub fn mean(&self) -> f64 {
        match *self {
            MessageSizeDist::UniformRange { min, max } => (min as f64 + max as f64) / 2.0,
            MessageSizeDist::Fixed(len) => len as f64,
            MessageSizeDist::Bimodal { short, long, p_short } => {
                p_short * short as f64 + (1.0 - p_short) * long as f64
            }
        }
    }

    /// Draw one message length.
    pub fn draw<R: Rng>(&self, rng: &mut R) -> u32 {
        match *self {
            MessageSizeDist::UniformRange { min, max } => rng.random_range(min..=max),
            MessageSizeDist::Fixed(len) => len,
            MessageSizeDist::Bimodal { short, long, p_short } => {
                if rng.random::<f64>() < p_short {
                    short
                } else {
                    long
                }
            }
        }
    }

    /// Validate the parameters.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            MessageSizeDist::UniformRange { min, max } => {
                if min == 0 {
                    Err("messages must have at least one flit".into())
                } else if min > max {
                    Err(format!("empty size range [{min}, {max}]"))
                } else {
                    Ok(())
                }
            }
            MessageSizeDist::Fixed(0) => Err("messages must have at least one flit".into()),
            MessageSizeDist::Fixed(_) => Ok(()),
            MessageSizeDist::Bimodal { short, long, p_short } => {
                if short == 0 || long == 0 {
                    Err("messages must have at least one flit".into())
                } else if !(0.0..=1.0).contains(&p_short) {
                    Err(format!("p_short {p_short} outside [0, 1]"))
                } else {
                    Ok(())
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn paper_distribution_mean() {
        assert_eq!(MessageSizeDist::PAPER.mean(), 516.0);
    }

    #[test]
    fn uniform_draws_stay_in_range_and_average_out() {
        let mut rng = SmallRng::seed_from_u64(7);
        let d = MessageSizeDist::PAPER;
        let n = 20_000;
        let mut sum = 0u64;
        for _ in 0..n {
            let v = d.draw(&mut rng);
            assert!((8..=1024).contains(&v));
            sum += v as u64;
        }
        let mean = sum as f64 / n as f64;
        assert!((mean - 516.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn fixed_and_bimodal() {
        let mut rng = SmallRng::seed_from_u64(8);
        assert_eq!(MessageSizeDist::Fixed(32).draw(&mut rng), 32);
        assert_eq!(MessageSizeDist::Fixed(32).mean(), 32.0);
        let b = MessageSizeDist::Bimodal { short: 8, long: 1000, p_short: 0.9 };
        assert!((b.mean() - (0.9 * 8.0 + 0.1 * 1000.0)).abs() < 1e-9);
        let mut shorts = 0;
        for _ in 0..10_000 {
            let v = b.draw(&mut rng);
            assert!(v == 8 || v == 1000);
            if v == 8 {
                shorts += 1;
            }
        }
        assert!((shorts as f64 / 10_000.0 - 0.9).abs() < 0.02);
    }

    #[test]
    fn validation() {
        assert!(MessageSizeDist::PAPER.validate().is_ok());
        assert!(MessageSizeDist::Fixed(0).validate().is_err());
        assert!(MessageSizeDist::UniformRange { min: 9, max: 8 }.validate().is_err());
        assert!(MessageSizeDist::Bimodal { short: 8, long: 9, p_short: 1.5 }
            .validate()
            .is_err());
    }
}
