//! The compiled workload the simulation engine consumes.
//!
//! A [`WorkloadSpec`] describes a §5 experiment declaratively: offered
//! load, destination pattern, clustering with optional per-cluster rate
//! ratios, and message sizes. [`Workload::compile`] resolves it against a
//! geometry into per-node message rates and destination samplers.
//!
//! **Load normalisation.** `offered_load` is in flits per cycle per node,
//! averaged over *all* nodes (1.0 saturates the one-port injection
//! channels). With cluster rate ratios `r_c`, node `i` in cluster `c`
//! generates at `ρ_i = load · r_c · N / Σ_c r_c |C_c|`, so the ratio
//! `1:0:0:0` over four 16-node clusters drives the active cluster at four
//! times the nominal load while the network-wide average stays `load`
//! (this is why that ratio caps at 25% delivered throughput in Fig. 17b).

use crate::cluster::{ClusterMap, Clustering};
use crate::pattern::{hot_spot_probabilities, TrafficPattern};
use crate::size::MessageSizeDist;
use minnet_topology::{Geometry, NodeAddr, NodeId};
use rand::{Rng, RngExt};
use std::sync::Arc;

/// Declarative description of a workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Offered load in flits/cycle/node, averaged over all nodes.
    pub offered_load: f64,
    /// Destination pattern.
    pub pattern: TrafficPattern,
    /// Node clustering (destination scope for uniform/hot-spot patterns).
    pub clustering: Clustering,
    /// Relative traffic rates per cluster (the §5.2 `a:b:c:d` ratios);
    /// `None` means equal rates. Length must match the cluster count.
    pub rates: Option<Vec<f64>>,
    /// Message-length distribution.
    pub sizes: MessageSizeDist,
}

impl WorkloadSpec {
    /// A global uniform workload with the paper's message sizes.
    pub fn global_uniform(offered_load: f64) -> WorkloadSpec {
        WorkloadSpec {
            offered_load,
            pattern: TrafficPattern::Uniform,
            clustering: Clustering::Global,
            rates: None,
            sizes: MessageSizeDist::PAPER,
        }
    }
}

/// Per-node destination sampler.
#[derive(Clone, Debug)]
enum DestSampler {
    /// Uniform over the cluster members, skipping the source.
    Uniform {
        cluster: u32,
    },
    /// Hot-spot within the cluster.
    HotSpot {
        cluster: u32,
        p_hot: f64,
    },
    /// Fixed destination (permutation patterns).
    Fixed(NodeId),
    /// This node generates no traffic (permutation fixed point, or a
    /// single-node cluster with nobody else to talk to).
    Silent,
}

/// A compiled workload: what each node sends, to whom, and how often.
///
/// The destination samplers and cluster map are shared (`Arc`) with the
/// [`WorkloadTemplate`] that produced them, so instantiating the same
/// experiment at another load copies only the per-node rate vector.
#[derive(Clone, Debug)]
pub struct Workload {
    geometry: Geometry,
    clusters: Arc<ClusterMap>,
    sizes: MessageSizeDist,
    offered_load: f64,
    /// Message rate per node, messages/cycle (0 for silent nodes).
    msg_rate: Vec<f64>,
    samplers: Arc<[DestSampler]>,
}

/// The load-independent part of a compiled workload: destination samplers,
/// cluster structure, per-node rate weights, and the size distribution.
///
/// A sweep compiles the template **once** and calls
/// [`WorkloadTemplate::workload_at`] per load point; the instantiation is
/// a handful of multiplications and produces a [`Workload`] bit-identical
/// (every `f64` down to its bit pattern) to what [`Workload::compile`]
/// would build from scratch at that load — `compile` is itself a thin
/// wrapper over this type, so there is only one code path to trust.
#[derive(Clone, Debug)]
pub struct WorkloadTemplate {
    geometry: Geometry,
    clusters: Arc<ClusterMap>,
    sizes: MessageSizeDist,
    samplers: Arc<[DestSampler]>,
    /// Per-node relative rate weight (the node's cluster ratio entry).
    node_weight: Vec<f64>,
    /// Σ_c r_c |C_c| — the load-normalisation denominator.
    weighted: f64,
    mean_len: f64,
}

impl WorkloadTemplate {
    /// Compile everything about `spec` that does not depend on
    /// `spec.offered_load` (which is ignored here and supplied to
    /// [`WorkloadTemplate::workload_at`] instead).
    ///
    /// # Errors
    ///
    /// Reports malformed clusterings, rate/cluster count mismatches, and
    /// permutation indices out of range.
    pub fn compile(g: Geometry, spec: &WorkloadSpec) -> Result<WorkloadTemplate, String> {
        spec.pattern.validate()?;
        spec.sizes.validate()?;
        let clusters = ClusterMap::build(&g, &spec.clustering)?;
        let ncl = clusters.len();
        let rates: Vec<f64> = match &spec.rates {
            None => vec![1.0; ncl],
            Some(r) => {
                if r.len() != ncl {
                    return Err(format!(
                        "{} rate entries for {} clusters",
                        r.len(),
                        ncl
                    ));
                }
                if r.iter().any(|&x| x < 0.0 || !x.is_finite()) {
                    return Err("cluster rates must be nonnegative".into());
                }
                if r.iter().sum::<f64>() <= 0.0 {
                    return Err("at least one cluster rate must be positive".into());
                }
                r.clone()
            }
        };

        let n = g.nodes() as usize;
        // Normalise: Σ_c r_c |C_c| · scale = load · N.
        let weighted: f64 = rates
            .iter()
            .zip(&clusters.members)
            .map(|(r, m)| r * m.len() as f64)
            .sum();
        let mean_len = spec.sizes.mean();

        let mut samplers = Vec::with_capacity(n);
        let mut node_weight = vec![0.0; n];
        for node in 0..n as u32 {
            let cl = clusters.cluster_of(node);
            node_weight[node as usize] = rates[cl as usize];
            let sampler = match spec.pattern {
                TrafficPattern::Uniform => {
                    if clusters.members[cl as usize].len() < 2 {
                        DestSampler::Silent
                    } else {
                        DestSampler::Uniform { cluster: cl }
                    }
                }
                TrafficPattern::HotSpot { extra } => {
                    let size = clusters.members[cl as usize].len();
                    if size < 2 {
                        DestSampler::Silent
                    } else {
                        let (p_hot, _) = hot_spot_probabilities(size, extra);
                        DestSampler::HotSpot { cluster: cl, p_hot }
                    }
                }
                TrafficPattern::Permutation(p) => {
                    if p == minnet_topology::Perm::Butterfly(0) {
                        // β_0 is the identity: everything is a fixed point.
                    }
                    if let minnet_topology::Perm::Butterfly(i) = p {
                        if i >= g.n() {
                            return Err(format!("butterfly index {i} out of range"));
                        }
                    }
                    let d = p.apply(&g, NodeAddr(node));
                    if d.0 == node {
                        DestSampler::Silent
                    } else {
                        DestSampler::Fixed(d.0)
                    }
                }
            };
            samplers.push(sampler);
        }

        Ok(WorkloadTemplate {
            geometry: g,
            clusters: Arc::new(clusters),
            sizes: spec.sizes,
            samplers: samplers.into(),
            node_weight,
            weighted,
            mean_len,
        })
    }

    /// The geometry this template was compiled for.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// Instantiate a [`Workload`] at the given offered load
    /// (flits/cycle/node, averaged over all nodes).
    ///
    /// # Errors
    ///
    /// Reports non-positive or non-finite loads.
    pub fn workload_at(&self, offered_load: f64) -> Result<Workload, String> {
        if offered_load <= 0.0 || !offered_load.is_finite() {
            return Err(format!("offered load must be positive, got {offered_load}"));
        }
        let n = self.geometry.nodes() as usize;
        let scale = offered_load * n as f64 / self.weighted;
        let mut msg_rate = vec![0.0; n];
        for (node, rate) in msg_rate.iter_mut().enumerate() {
            let flit_rate = self.node_weight[node] * scale;
            if !matches!(self.samplers[node], DestSampler::Silent) && flit_rate > 0.0 {
                *rate = flit_rate / self.mean_len;
            }
        }
        Ok(Workload {
            geometry: self.geometry,
            clusters: Arc::clone(&self.clusters),
            sizes: self.sizes,
            offered_load,
            msg_rate,
            samplers: Arc::clone(&self.samplers),
        })
    }
}

impl Workload {
    /// Compile a spec against a geometry — equivalent to
    /// [`WorkloadTemplate::compile`] followed by
    /// [`WorkloadTemplate::workload_at`] at `spec.offered_load` (it *is*
    /// that, so the per-load fast path cannot drift from this one).
    ///
    /// # Errors
    ///
    /// Reports invalid loads, malformed clusterings, rate/cluster count
    /// mismatches, and permutation indices out of range.
    pub fn compile(g: Geometry, spec: &WorkloadSpec) -> Result<Workload, String> {
        if spec.offered_load <= 0.0 || !spec.offered_load.is_finite() {
            return Err(format!("offered load must be positive, got {}", spec.offered_load));
        }
        WorkloadTemplate::compile(g, spec)?.workload_at(spec.offered_load)
    }

    /// The geometry this workload was compiled for.
    pub fn geometry(&self) -> Geometry {
        self.geometry
    }

    /// The nominal offered load (flits/cycle/node).
    pub fn offered_load(&self) -> f64 {
        self.offered_load
    }

    /// The resolved cluster map.
    pub fn clusters(&self) -> &ClusterMap {
        &self.clusters
    }


    /// Message generation rate of `node` in messages/cycle; `0.0` means
    /// the node is silent.
    #[inline]
    pub fn message_rate(&self, node: NodeId) -> f64 {
        self.msg_rate[node as usize]
    }

    /// Mean message length in flits.
    pub fn mean_length(&self) -> f64 {
        self.sizes.mean()
    }

    /// Draw a message length.
    pub fn draw_length<R: Rng>(&self, rng: &mut R) -> u32 {
        self.sizes.draw(rng)
    }

    /// Draw a destination for a message from `node`. Never returns `node`
    /// itself.
    ///
    /// # Panics
    ///
    /// Panics if the node is silent (`message_rate(node) == 0.0` — the
    /// engine must not ask).
    pub fn draw_destination<R: Rng>(&self, node: NodeId, rng: &mut R) -> NodeId {
        match self.samplers[node as usize] {
            DestSampler::Silent => panic!("destination requested for silent node {node}"),
            DestSampler::Fixed(d) => d,
            DestSampler::Uniform { cluster } => {
                let members = &self.clusters.members[cluster as usize];
                loop {
                    let d = members[rng.random_range(0..members.len())];
                    if d != node {
                        return d;
                    }
                }
            }
            DestSampler::HotSpot { cluster, p_hot } => {
                let members = &self.clusters.members[cluster as usize];
                let hot = members[0];
                loop {
                    let d = if rng.random::<f64>() < p_hot {
                        hot
                    } else {
                        // Uniform over the non-hot members.
                        members[1 + rng.random_range(0..members.len() - 1)]
                    };
                    if d != node {
                        return d;
                    }
                }
            }
        }
    }

    /// Aggregate nominal flit-injection rate over all nodes (flits/cycle),
    /// accounting for silent nodes.
    pub fn aggregate_flit_rate(&self) -> f64 {
        self.msg_rate.iter().sum::<f64>() * self.mean_length()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minnet_topology::Perm;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn g64() -> Geometry {
        Geometry::new(4, 3)
    }

    #[test]
    fn global_uniform_rates() {
        let w = Workload::compile(g64(), &WorkloadSpec::global_uniform(0.5)).unwrap();
        for node in 0..64 {
            assert!((w.message_rate(node) - 0.5 / 516.0).abs() < 1e-12);
        }
        assert!((w.aggregate_flit_rate() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn uniform_never_draws_self_and_stays_in_cluster() {
        let g = g64();
        let spec = WorkloadSpec {
            offered_load: 0.3,
            pattern: TrafficPattern::Uniform,
            clustering: Clustering::cubes_from_patterns(&g, &["0XX", "1XX", "2XX", "3XX"])
                .unwrap(),
            rates: None,
            sizes: MessageSizeDist::PAPER,
        };
        let w = Workload::compile(g, &spec).unwrap();
        let mut rng = SmallRng::seed_from_u64(12);
        for src in [0u32, 17, 35, 63] {
            for _ in 0..500 {
                let d = w.draw_destination(src, &mut rng);
                assert_ne!(d, src);
                assert_eq!(d / 16, src / 16, "destination left the cluster");
            }
        }
    }

    #[test]
    fn rate_ratios_follow_paper_normalisation() {
        let g = g64();
        let spec = WorkloadSpec {
            offered_load: 0.4,
            pattern: TrafficPattern::Uniform,
            clustering: Clustering::cubes_from_patterns(&g, &["0XX", "1XX", "2XX", "3XX"])
                .unwrap(),
            rates: Some(vec![4.0, 1.0, 1.0, 1.0]),
            sizes: MessageSizeDist::Fixed(100),
        };
        let w = Workload::compile(g, &spec).unwrap();
        // scale = 0.4·64 / (16·7) = 0.4·4/7; cluster 0 nodes: 4×, others 1×.
        let hi = w.message_rate(0) * 100.0;
        let lo = w.message_rate(20) * 100.0;
        assert!((hi / lo - 4.0).abs() < 1e-9);
        assert!((hi - 0.4 * 16.0 / 7.0).abs() < 1e-9);
        // Average over all nodes is the nominal load.
        assert!((w.aggregate_flit_rate() / 64.0 - 0.4).abs() < 1e-9);
    }

    #[test]
    fn zero_rate_cluster_is_silent() {
        let g = g64();
        let spec = WorkloadSpec {
            offered_load: 0.4,
            pattern: TrafficPattern::Uniform,
            clustering: Clustering::cubes_from_patterns(&g, &["0XX", "1XX", "2XX", "3XX"])
                .unwrap(),
            rates: Some(vec![1.0, 0.0, 0.0, 0.0]),
            sizes: MessageSizeDist::PAPER,
        };
        let w = Workload::compile(g, &spec).unwrap();
        assert!(w.message_rate(0) > 0.0);
        assert_eq!(w.message_rate(16), 0.0);
        assert_eq!(w.message_rate(63), 0.0);
        // Cluster 0 runs at 4× nominal.
        assert!((w.message_rate(0) * 516.0 - 1.6).abs() < 1e-9);
    }

    #[test]
    fn hot_spot_frequencies() {
        let g = g64();
        let spec = WorkloadSpec {
            offered_load: 0.3,
            pattern: TrafficPattern::HotSpot { extra: 0.10 },
            clustering: Clustering::Global,
            rates: None,
            sizes: MessageSizeDist::PAPER,
        };
        let w = Workload::compile(g, &spec).unwrap();
        let mut rng = SmallRng::seed_from_u64(13);
        let trials = 60_000;
        let mut hot_hits = 0;
        for _ in 0..trials {
            // Source 5 (not the hot node 0).
            if w.draw_destination(5, &mut rng) == 0 {
                hot_hits += 1;
            }
        }
        let (p_hot, _) = hot_spot_probabilities(64, 0.10);
        let frac = hot_hits as f64 / trials as f64;
        assert!((frac - p_hot).abs() < 0.01, "hot frac {frac} vs {p_hot}");
    }

    #[test]
    fn permutation_pattern_fixed_destinations_and_fixed_points() {
        let g = g64();
        let spec = WorkloadSpec {
            offered_load: 0.3,
            pattern: TrafficPattern::Permutation(Perm::PerfectShuffle),
            clustering: Clustering::Global,
            rates: None,
            sizes: MessageSizeDist::PAPER,
        };
        let w = Workload::compile(g, &spec).unwrap();
        let mut rng = SmallRng::seed_from_u64(14);
        // Node 1 (001₄ → 010₄ = 4) always sends to 4.
        assert_eq!(w.draw_destination(1, &mut rng), 4);
        // Constant-digit addresses are silent fixed points: 0, 21, 42, 63.
        for fp in [0u32, 21, 42, 63] {
            assert_eq!(w.message_rate(fp), 0.0);
        }
        assert!(w.message_rate(1) > 0.0);
    }

    #[test]
    fn template_instantiation_is_bit_identical_to_compile() {
        let g = g64();
        let specs = [
            WorkloadSpec::global_uniform(0.123),
            WorkloadSpec {
                offered_load: 0.7,
                pattern: TrafficPattern::HotSpot { extra: 0.05 },
                clustering: Clustering::cubes_from_patterns(&g, &["0XX", "1XX", "2XX", "3XX"])
                    .unwrap(),
                rates: Some(vec![4.0, 2.0, 1.0, 1.0]),
                sizes: MessageSizeDist::PAPER,
            },
            WorkloadSpec {
                offered_load: 0.31,
                pattern: TrafficPattern::Permutation(Perm::PerfectShuffle),
                clustering: Clustering::Global,
                rates: None,
                sizes: MessageSizeDist::Fixed(32),
            },
        ];
        for spec in specs {
            let tpl = WorkloadTemplate::compile(g, &spec).unwrap();
            for load in [0.05, spec.offered_load, 0.9] {
                let via_tpl = tpl.workload_at(load).unwrap();
                let fresh = Workload::compile(
                    g,
                    &WorkloadSpec {
                        offered_load: load,
                        ..spec.clone()
                    },
                )
                .unwrap();
                for node in 0..g.nodes() {
                    assert_eq!(
                        via_tpl.message_rate(node).to_bits(),
                        fresh.message_rate(node).to_bits(),
                        "node {node} at load {load}"
                    );
                }
                assert_eq!(via_tpl.offered_load().to_bits(), fresh.offered_load().to_bits());
            }
        }
    }

    #[test]
    fn template_rejects_bad_load_late() {
        let tpl = WorkloadTemplate::compile(g64(), &WorkloadSpec::global_uniform(0.5)).unwrap();
        assert!(tpl.workload_at(0.0).is_err());
        assert!(tpl.workload_at(f64::NAN).is_err());
        assert!(tpl.workload_at(0.4).is_ok());
        assert_eq!(tpl.geometry(), g64());
    }

    #[test]
    fn compile_errors() {
        let g = g64();
        assert!(Workload::compile(g, &WorkloadSpec::global_uniform(0.0)).is_err());
        let bad_rates = WorkloadSpec {
            rates: Some(vec![1.0, 2.0]),
            ..WorkloadSpec::global_uniform(0.1)
        };
        assert!(matches!(
            Workload::compile(g, &bad_rates),
            Err(e) if e.contains("rate entries")
        ));
        let bad_perm = WorkloadSpec {
            pattern: TrafficPattern::Permutation(Perm::Butterfly(9)),
            ..WorkloadSpec::global_uniform(0.1)
        };
        assert!(Workload::compile(g, &bad_perm).is_err());
    }
}
