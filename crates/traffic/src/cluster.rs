//! Node clustering (§4, §5.1).
//!
//! Processor clusters model space-shared jobs: each node belongs to exactly
//! one cluster, and (for the uniform and hot-spot patterns) destinations
//! are drawn within the source's cluster. Clusters are specified either as
//! digit-level k-ary cubes or as binary cubes; the paper's 64-node
//! evaluation uses the four 16-node clusters `0XX … 3XX` (channel-balanced
//! for the cube MIN, channel-reduced for the butterfly) and `XX0 … XX3`
//! (channel-shared for the butterfly).

use minnet_topology::{BitCube, CubeSpec, Geometry, NodeId};

/// How the nodes are grouped.
#[derive(Clone, Debug)]
pub enum Clustering {
    /// One cluster containing every node.
    Global,
    /// Digit-level k-ary cubes; must partition the node set.
    Cubes(Vec<CubeSpec>),
    /// Bit-level binary cubes; must partition the node set.
    BitCubes(Vec<BitCube>),
}

impl Clustering {
    /// Parse a list of digit patterns like `["0XX", "1XX"]`.
    pub fn cubes_from_patterns(g: &Geometry, patterns: &[&str]) -> Result<Clustering, String> {
        let cubes = patterns
            .iter()
            .map(|p| CubeSpec::parse(g, p).ok_or_else(|| format!("bad cube pattern {p:?}")))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Clustering::Cubes(cubes))
    }
}

/// A resolved clustering: membership lists plus reverse lookup.
#[derive(Clone, Debug)]
pub struct ClusterMap {
    /// `members[c]` lists the nodes of cluster `c`, in increasing order.
    pub members: Vec<Vec<NodeId>>,
    /// `cluster_of[node]` gives the node's cluster index.
    pub cluster_of: Vec<u32>,
}

impl ClusterMap {
    /// Resolve a clustering over geometry `g`.
    ///
    /// # Errors
    ///
    /// Fails unless the clusters are pairwise disjoint and jointly cover
    /// every node.
    pub fn build(g: &Geometry, clustering: &Clustering) -> Result<ClusterMap, String> {
        let n = g.nodes();
        let members: Vec<Vec<NodeId>> = match clustering {
            Clustering::Global => vec![(0..n).collect()],
            Clustering::Cubes(cubes) => cubes
                .iter()
                .map(|c| c.members(g).into_iter().map(|a| a.0).collect())
                .collect(),
            Clustering::BitCubes(cubes) => cubes
                .iter()
                .map(|c| c.members(g).into_iter().map(|a| a.0).collect())
                .collect(),
        };
        let mut cluster_of = vec![u32::MAX; n as usize];
        for (ci, ms) in members.iter().enumerate() {
            for &m in ms {
                if cluster_of[m as usize] != u32::MAX {
                    return Err(format!("node {m} belongs to two clusters"));
                }
                cluster_of[m as usize] = ci as u32;
            }
        }
        if let Some(orphan) = cluster_of.iter().position(|&c| c == u32::MAX) {
            return Err(format!("node {orphan} belongs to no cluster"));
        }
        Ok(ClusterMap {
            members,
            cluster_of,
        })
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether there are no clusters (never true for a valid map).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Cluster index of a node.
    #[inline]
    pub fn cluster_of(&self, node: NodeId) -> u32 {
        self.cluster_of[node as usize]
    }

    /// The paper's cluster-16 partition for the 64-node, k=4 system:
    /// `0XX, 1XX, 2XX, 3XX` (channel-balanced on the cube MIN,
    /// channel-reduced on the butterfly MIN).
    pub fn cluster16_msd(g: &Geometry) -> Result<ClusterMap, String> {
        let patterns: Vec<String> = (0..g.k())
            .map(|v| {
                let mut s = v.to_string();
                s.extend(std::iter::repeat_n('X', g.n() as usize - 1));
                s
            })
            .collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let clustering = Clustering::cubes_from_patterns(g, &refs)?;
        ClusterMap::build(g, &clustering)
    }

    /// The paper's channel-shared clustering for the butterfly MIN:
    /// `XX0, XX1, XX2, XX3` (least-significant digit fixed).
    pub fn cluster16_lsd(g: &Geometry) -> Result<ClusterMap, String> {
        let patterns: Vec<String> = (0..g.k())
            .map(|v| {
                let mut s: String = std::iter::repeat_n('X', g.n() as usize - 1).collect();
                s.push_str(&v.to_string());
                s
            })
            .collect();
        let refs: Vec<&str> = patterns.iter().map(String::as_str).collect();
        let clustering = Clustering::cubes_from_patterns(g, &refs)?;
        ClusterMap::build(g, &clustering)
    }

    /// The cluster-32 partition (two binary cubes splitting on the most
    /// significant address bit); requires `k` to be a power of two.
    pub fn cluster32(g: &Geometry) -> Result<ClusterMap, String> {
        if !g.k().is_power_of_two() {
            return Err("cluster-32 needs k to be a power of two".into());
        }
        let j = g.k().trailing_zeros();
        let nbits = g.n() * j;
        let top = 1u32 << (nbits - 1);
        let lo = BitCube::new(g, top, 0);
        let hi = BitCube::new(g, top, top);
        ClusterMap::build(g, &Clustering::BitCubes(vec![lo, hi]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_is_one_cluster() {
        let g = Geometry::new(4, 3);
        let m = ClusterMap::build(&g, &Clustering::Global).unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(m.members[0].len(), 64);
        assert_eq!(m.cluster_of(17), 0);
    }

    #[test]
    fn paper_cluster16_partitions() {
        let g = Geometry::new(4, 3);
        let msd = ClusterMap::cluster16_msd(&g).unwrap();
        assert_eq!(msd.len(), 4);
        for c in &msd.members {
            assert_eq!(c.len(), 16);
        }
        // 0XX = nodes 0..16, 3XX = nodes 48..64.
        assert_eq!(msd.members[0], (0..16).collect::<Vec<_>>());
        assert_eq!(msd.cluster_of(50), 3);

        let lsd = ClusterMap::cluster16_lsd(&g).unwrap();
        assert_eq!(lsd.len(), 4);
        // XX0 = nodes ≡ 0 mod 4.
        assert_eq!(lsd.members[0], (0..64).step_by(4).collect::<Vec<_>>());
        assert_eq!(lsd.cluster_of(7), 3);
    }

    #[test]
    fn cluster32_halves() {
        let g = Geometry::new(4, 3);
        let m = ClusterMap::cluster32(&g).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.members[0], (0..32).collect::<Vec<_>>());
        assert_eq!(m.members[1], (32..64).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_overlap_and_gaps() {
        let g = Geometry::new(4, 3);
        let overlapping =
            Clustering::cubes_from_patterns(&g, &["0XX", "0XX", "1XX", "2XX", "3XX"]).unwrap();
        assert!(ClusterMap::build(&g, &overlapping).is_err());
        let gappy = Clustering::cubes_from_patterns(&g, &["0XX", "1XX"]).unwrap();
        assert!(ClusterMap::build(&g, &gappy).is_err());
    }

    #[test]
    fn bad_pattern_reported() {
        let g = Geometry::new(4, 3);
        assert!(Clustering::cubes_from_patterns(&g, &["5XX"]).is_err());
    }
}
