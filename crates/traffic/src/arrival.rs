//! Poisson message generation.
//!
//! "Each node generates packets at time intervals chosen from a negative
//! exponential distribution" (§5). Interarrival gaps are `-ln(U) · mean`
//! for `U` uniform on (0, 1].

use rand::{Rng, RngExt};

/// A negative-exponential interarrival generator.
#[derive(Clone, Copy, Debug)]
pub struct PoissonArrivals {
    mean_gap: f64,
}

impl PoissonArrivals {
    /// Generator with the given mean interarrival time (cycles per
    /// message).
    ///
    /// # Panics
    ///
    /// Panics if `mean_gap` is not finite and positive.
    pub fn new(mean_gap: f64) -> Self {
        assert!(
            mean_gap.is_finite() && mean_gap > 0.0,
            "mean interarrival must be positive and finite, got {mean_gap}"
        );
        PoissonArrivals { mean_gap }
    }

    /// Generator for a given message rate (messages per cycle).
    pub fn with_rate(rate: f64) -> Self {
        Self::new(1.0 / rate)
    }

    /// The mean gap in cycles.
    pub fn mean_gap(&self) -> f64 {
        self.mean_gap
    }

    /// Draw the next interarrival gap in cycles (continuous; the engine
    /// accumulates into fractional arrival times and fires on whole
    /// cycles).
    pub fn next_gap<R: Rng>(&self, rng: &mut R) -> f64 {
        // random::<f64>() is in [0, 1); flip to (0, 1] so ln never sees 0.
        let u = 1.0 - rng.random::<f64>();
        -u.ln() * self.mean_gap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn mean_matches_parameter() {
        let mut rng = SmallRng::seed_from_u64(9);
        let a = PoissonArrivals::new(250.0);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| a.next_gap(&mut rng)).sum();
        let mean = sum / n as f64;
        assert!((mean - 250.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn gaps_are_positive() {
        let mut rng = SmallRng::seed_from_u64(10);
        let a = PoissonArrivals::with_rate(0.01);
        assert!((a.mean_gap() - 100.0).abs() < 1e-12);
        for _ in 0..10_000 {
            assert!(a.next_gap(&mut rng) > 0.0);
        }
    }

    #[test]
    fn exponential_shape() {
        // P(gap > mean) should be close to e^{-1} ≈ 0.3679.
        let mut rng = SmallRng::seed_from_u64(11);
        let a = PoissonArrivals::new(100.0);
        let n = 100_000;
        let over = (0..n).filter(|_| a.next_gap(&mut rng) > 100.0).count();
        let frac = over as f64 / n as f64;
        assert!((frac - 0.3679).abs() < 0.01, "frac {frac}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_mean() {
        let _ = PoissonArrivals::new(0.0);
    }
}
