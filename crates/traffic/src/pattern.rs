//! Destination patterns (§5.1).
//!
//! Four patterns drive the evaluation: **uniform** (any other node of the
//! source's cluster, equiprobable), **x% nonuniform / hot spot** (the first
//! node of each cluster receives `x%` more packets: with `y = N·x`, the hot
//! node is drawn with probability `(1+y)/(N+y)` and every other node with
//! `1/(N+y)`), and the two fixed **permutation** patterns (perfect
//! k-shuffle, i-th butterfly) used to probe structural contention.

use minnet_topology::Perm;

/// The destination pattern of a workload.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum TrafficPattern {
    /// Uniform over the other nodes of the source's cluster.
    Uniform,
    /// Hot-spot: the first node of each cluster receives `extra` (e.g.
    /// `0.05` for "5% more traffic") more than its uniform share.
    HotSpot {
        /// The x of "x% nonuniform", as a fraction.
        extra: f64,
    },
    /// Fixed permutation: node `a` always sends to `perm(a)`. Nodes that
    /// are fixed points of the permutation generate no traffic.
    Permutation(Perm),
}

impl TrafficPattern {
    /// The perfect k-shuffle permutation pattern of Fig. 20a.
    pub const SHUFFLE: TrafficPattern = TrafficPattern::Permutation(Perm::PerfectShuffle);

    /// The i-th butterfly permutation pattern (Fig. 20b uses `i = 2`).
    pub fn butterfly(i: u32) -> TrafficPattern {
        TrafficPattern::Permutation(Perm::Butterfly(i))
    }

    /// Validate parameters.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            TrafficPattern::HotSpot { extra } if !(*extra >= 0.0 && extra.is_finite()) => {
                Err(format!("hot-spot extra fraction must be >= 0, got {extra}"))
            }
            _ => Ok(()),
        }
    }
}

/// The hot-spot probabilities for a cluster of `n` nodes with extra
/// fraction `x`: returns `(p_hot, p_other)` where `y = n·x`,
/// `p_hot = (1+y)/(n+y)` and `p_other = 1/(n+y)`.
pub fn hot_spot_probabilities(n: usize, x: f64) -> (f64, f64) {
    let y = n as f64 * x;
    ((1.0 + y) / (n as f64 + y), 1.0 / (n as f64 + y))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_spot_formula_matches_paper() {
        // 64 nodes, 5% more: y = 3.2, p_hot = 4.2/67.2 = 0.0625,
        // p_other = 1/67.2.
        let (ph, po) = hot_spot_probabilities(64, 0.05);
        assert!((ph - 4.2 / 67.2).abs() < 1e-12);
        assert!((po - 1.0 / 67.2).abs() < 1e-12);
        // Probabilities sum to 1 over the cluster.
        assert!((ph + 63.0 * po - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hot_spot_zero_extra_is_uniform() {
        let (ph, po) = hot_spot_probabilities(16, 0.0);
        assert!((ph - po).abs() < 1e-12);
        assert!((ph - 1.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(TrafficPattern::Uniform.validate().is_ok());
        assert!(TrafficPattern::HotSpot { extra: 0.10 }.validate().is_ok());
        assert!(TrafficPattern::HotSpot { extra: -0.1 }.validate().is_err());
        assert!(TrafficPattern::HotSpot { extra: f64::NAN }.validate().is_err());
        assert!(TrafficPattern::SHUFFLE.validate().is_ok());
    }
}
