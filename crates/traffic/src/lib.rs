//! # minnet-traffic
//!
//! Workload generation for the simulation experiments of §5.1:
//!
//! * [`pattern::TrafficPattern`] — uniform, x% hot-spot, and the two
//!   permutation patterns (perfect k-shuffle, i-th butterfly);
//! * [`cluster::Clustering`] — global, digit-cube, or binary-cube
//!   partitionings of the node set, with optional per-cluster relative
//!   traffic rates (the `a:b:c:d` ratios of §5.2);
//! * [`size::MessageSizeDist`] — message lengths (uniform [8, 1024] flits
//!   in the paper; fixed and bimodal kept for the future-work studies);
//! * [`arrival::PoissonArrivals`] — negative-exponential interarrival
//!   times;
//! * [`workload::Workload`] — the compiled per-node generator the engine
//!   consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod cluster;
pub mod pattern;
pub mod size;
pub mod workload;

pub use arrival::PoissonArrivals;
pub use cluster::{ClusterMap, Clustering};
pub use pattern::TrafficPattern;
pub use size::MessageSizeDist;
pub use workload::{Workload, WorkloadSpec, WorkloadTemplate};
