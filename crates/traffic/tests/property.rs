//! Property tests for workload compilation and destination sampling.

use minnet_topology::Geometry;
use minnet_traffic::{Clustering, MessageSizeDist, TrafficPattern, Workload, WorkloadSpec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn geometry() -> impl Strategy<Value = Geometry> {
    prop_oneof![
        Just(Geometry::new(2, 3)),
        Just(Geometry::new(4, 2)),
        Just(Geometry::new(4, 3)),
        Just(Geometry::new(8, 2)),
    ]
}

fn pattern() -> impl Strategy<Value = TrafficPattern> {
    prop_oneof![
        Just(TrafficPattern::Uniform),
        (0.0f64..0.5).prop_map(|x| TrafficPattern::HotSpot { extra: x }),
        Just(TrafficPattern::SHUFFLE),
        Just(TrafficPattern::butterfly(1)),
    ]
}

fn msd_clustering(g: &Geometry) -> Clustering {
    let free: String = std::iter::repeat_n('X', g.n() as usize - 1).collect();
    let pats: Vec<String> = (0..g.k()).map(|v| format!("{v}{free}")).collect();
    let refs: Vec<&str> = pats.iter().map(String::as_str).collect();
    Clustering::cubes_from_patterns(g, &refs).expect("valid patterns")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn destinations_are_always_valid(
        g in geometry(),
        pattern in pattern(),
        clustered in proptest::bool::ANY,
        load in 0.01f64..1.5,
        seed in 0u64..10_000,
    ) {
        let clustering = if clustered {
            msd_clustering(&g)
        } else {
            Clustering::Global
        };
        let spec = WorkloadSpec {
            offered_load: load,
            pattern,
            clustering,
            rates: None,
            sizes: MessageSizeDist::PAPER,
        };
        let wl = Workload::compile(g, &spec).unwrap();
        let clusters = wl.clusters().clone();
        let mut rng = SmallRng::seed_from_u64(seed);
        for node in 0..g.nodes() {
            if wl.message_rate(node) == 0.0 {
                continue; // silent node (permutation fixed point)
            }
            for _ in 0..20 {
                let d = wl.draw_destination(node, &mut rng);
                prop_assert!(d < g.nodes());
                prop_assert_ne!(d, node);
                match pattern {
                    TrafficPattern::Uniform | TrafficPattern::HotSpot { .. } => {
                        prop_assert_eq!(
                            clusters.cluster_of(d),
                            clusters.cluster_of(node),
                            "destination left the cluster"
                        );
                    }
                    TrafficPattern::Permutation(_) => {}
                }
            }
        }
    }

    #[test]
    fn aggregate_rate_matches_nominal_load(
        g in geometry(),
        load in 0.01f64..1.0,
        ratios in proptest::collection::vec(0.0f64..5.0, 2..9),
    ) {
        // With uniform traffic and any valid rate vector, the aggregate
        // flit rate equals load × N exactly (the §5.2 normalisation).
        let clustering = msd_clustering(&g);
        let nclusters = g.k() as usize;
        let mut rates: Vec<f64> = ratios.into_iter().take(nclusters).collect();
        while rates.len() < nclusters {
            rates.push(1.0);
        }
        prop_assume!(rates.iter().sum::<f64>() > 0.0);
        let spec = WorkloadSpec {
            offered_load: load,
            pattern: TrafficPattern::Uniform,
            clustering,
            rates: Some(rates),
            sizes: MessageSizeDist::PAPER,
        };
        let wl = Workload::compile(g, &spec).unwrap();
        let agg = wl.aggregate_flit_rate();
        let rel = (agg - load * g.nodes() as f64).abs() / (load * g.nodes() as f64);
        prop_assert!(rel < 1e-9, "aggregate {agg} vs nominal {}", load * g.nodes() as f64);
    }

    #[test]
    fn message_lengths_respect_distribution(
        min in 1u32..100,
        span in 0u32..500,
        seed in 0u64..10_000,
    ) {
        let g = Geometry::new(2, 3);
        let spec = WorkloadSpec {
            offered_load: 0.1,
            pattern: TrafficPattern::Uniform,
            clustering: Clustering::Global,
            rates: None,
            sizes: MessageSizeDist::UniformRange { min, max: min + span },
        };
        let wl = Workload::compile(g, &spec).unwrap();
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..100 {
            let len = wl.draw_length(&mut rng);
            prop_assert!((min..=min + span).contains(&len));
        }
    }
}
