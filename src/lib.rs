//! # minnet-repro
//!
//! Workspace-root host crate for the cross-crate integration tests
//! (`tests/`) and runnable examples (`examples/`) of the `minnet`
//! reproduction of Ni, Gui & Moore, *"Performance Evaluation of
//! Switch-Based Wormhole Networks"* (ICPP 1995 / IEEE TPDS 8(5), 1997).
//!
//! The library surface lives in the `minnet` facade crate
//! (`crates/core`), re-exported here for the tests' convenience; see the
//! repository `README.md` for the tour.

pub use minnet::*;
