//! Property tests for the compile-once pipeline: random specs, loads,
//! seeds and scripts must behave **bit-identically** through the compiled
//! path ([`CompiledExperiment`], [`CompiledNet`] + [`Script`]/[`Chain`])
//! and the original one-shot path — and the precomputed routing table
//! must answer exactly like the closed-form [`RouteLogic`] along random
//! routes.
//!
//! The vendored proptest shim draws each test's cases from a fixed seed,
//! so failures reproduce without a persistence file.

use minnet::{CompiledExperiment, Experiment, NetworkSpec};
use minnet_routing::{RouteLogic, RouteTable};
use minnet_sim::{
    run_scripted, run_simulation, with_pooled_state, CompiledNet, EngineConfig, LockstepState,
    Script, ScriptedMsg,
};
use minnet_topology::Geometry;
use minnet_traffic::{MessageSizeDist, Workload, WorkloadSpec};
use proptest::prelude::*;
use std::sync::{Arc, OnceLock};

fn lineup_spec(i: usize) -> NetworkSpec {
    NetworkSpec::paper_lineup()[i % 4]
}

/// Compiled experiments are load-independent; build each lineup entry
/// once for the whole test binary.
fn compiled_lineup() -> &'static Vec<(Experiment, CompiledExperiment)> {
    static CACHE: OnceLock<Vec<(Experiment, CompiledExperiment)>> = OnceLock::new();
    CACHE.get_or_init(|| {
        NetworkSpec::paper_lineup()
            .into_iter()
            .map(|spec| {
                let mut exp = Experiment::paper_default(spec);
                exp.sizes = MessageSizeDist::Fixed(16);
                exp.sim.warmup = 300;
                exp.sim.measure = 1_500;
                let compiled = exp.compile().unwrap();
                (exp, compiled)
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    // Random (network, load, seed): the compiled pipeline — shared
    // routing table, pooled reused state — equals a fresh one-shot run
    // bit for bit.
    #[test]
    fn compiled_run_equals_fresh_run(
        which in 0usize..4,
        load_pct in 5u32..65,
        seed in 0u64..u64::MAX,
    ) {
        let (exp, compiled) = &compiled_lineup()[which];
        let load = f64::from(load_pct) / 100.0;
        let fresh = exp.run_seeded(load, seed).unwrap();
        let fast = compiled.run_seeded(load, seed).unwrap();
        prop_assert!(
            fresh.bitwise_eq(&fast),
            "{} load {load} seed {seed:#x}: compiled diverged",
            exp.network.name()
        );
    }

    // Random scripts: compiling the script once (validate + sort once)
    // and replaying it through `CompiledNet::run_script` equals the
    // per-call `run_scripted` wrapper bit for bit.
    #[test]
    fn compiled_script_equals_run_scripted(
        which in 0usize..4,
        seed in 0u64..u64::MAX,
        raw in proptest::collection::vec((0u64..60, 0u32..64, 0u32..64, 1u32..24), 1..40),
    ) {
        let g = Geometry::new(4, 3);
        let spec = lineup_spec(which);
        let net = Arc::new(spec.build(g));
        let msgs: Vec<ScriptedMsg> = raw
            .into_iter()
            .map(|(time, src, dst, len)| ScriptedMsg {
                time,
                src,
                // Self-sends are invalid by contract; remap instead of
                // discarding so every drawn case tests something.
                dst: if dst == src { (dst + 1) % 64 } else { dst },
                len,
            })
            .collect();
        let cfg = EngineConfig {
            vcs: spec.vcs(),
            warmup: 0,
            measure: 1_000_000,
            seed,
            ..EngineConfig::default()
        };
        let wrapper = run_scripted(&net, &msgs, &cfg).unwrap();
        let script = Script::compile(g, &msgs).unwrap();
        let compiled = CompiledNet::new(Arc::clone(&net), cfg).unwrap();
        let fast = with_pooled_state(|st| compiled.run_script(&script, seed, st)).unwrap();
        prop_assert!(
            wrapper.bitwise_eq(&fast),
            "{} seed {seed:#x}: compiled script diverged",
            spec.name()
        );
        prop_assert_eq!(wrapper.delivered_packets as usize, msgs.len());
    }

    // Random near-idle Poisson runs: the event-horizon fast-forward must
    // be invisible in the report — bit for bit — at loads where almost
    // every cycle is quiescent. The test profile keeps debug assertions
    // on, so the engine's "arrival missed its cycle" tripwire doubles as
    // the property that no jump ever passes an arrival-heap key: a jump
    // landing past a matured entry would pop it with `fire < now` and
    // abort the run instead of merely diverging.
    #[test]
    fn fast_forward_is_invisible_at_random_low_loads(
        which in 0usize..4,
        seed in 0u64..u64::MAX,
        load_bp in 1u32..50, // 0.0002..0.01 flits/node/cycle
        warmup in 0u64..600,
    ) {
        let g = Geometry::new(4, 3);
        let spec = lineup_spec(which);
        let net = Arc::new(spec.build(g));
        let load = f64::from(load_bp) / 5_000.0;
        let mut wspec = WorkloadSpec::global_uniform(load);
        wspec.sizes = MessageSizeDist::Fixed(16);
        let wl = Workload::compile(g, &wspec).unwrap();
        let on = EngineConfig {
            vcs: spec.vcs(),
            warmup,
            measure: 2_000,
            seed,
            ..EngineConfig::default()
        };
        let off = EngineConfig { fast_forward: false, ..on.clone() };
        let fast = run_simulation(&net, &wl, &on).unwrap();
        let slow = run_simulation(&net, &wl, &off).unwrap();
        prop_assert!(
            fast.bitwise_eq(&slow),
            "{} load {load} warmup {warmup} seed {seed:#x}: fast-forward changed the report",
            spec.name()
        );
        prop_assert_eq!(fast.cycles, warmup + 2_000, "infinite traffic runs the full horizon");
    }

    // Random sparse scripts: big random gaps between injections are the
    // scripted fast-forward's jump targets (the script cursor, not a
    // heap). On vs off must agree bit for bit, and every message must
    // still drain — a jump past an injection time would strand it (and
    // trip the cycle-count equality, since draining later moves the
    // drain break).
    #[test]
    fn fast_forward_on_random_sparse_scripts(
        which in 0usize..4,
        seed in 0u64..u64::MAX,
        raw in proptest::collection::vec((0u64..5_000, 0u32..64, 0u32..64, 1u32..40), 1..8),
    ) {
        let g = Geometry::new(4, 3);
        let spec = lineup_spec(which);
        let net = Arc::new(spec.build(g));
        let msgs: Vec<ScriptedMsg> = raw
            .into_iter()
            .map(|(time, src, dst, len)| ScriptedMsg {
                time,
                src,
                dst: if dst == src { (dst + 1) % 64 } else { dst },
                len,
            })
            .collect();
        let on = EngineConfig {
            vcs: spec.vcs(),
            warmup: 0,
            measure: 1_000_000,
            seed,
            ..EngineConfig::default()
        };
        let off = EngineConfig { fast_forward: false, ..on.clone() };
        let fast = run_scripted(&net, &msgs, &on).unwrap();
        let slow = run_scripted(&net, &msgs, &off).unwrap();
        prop_assert!(
            fast.bitwise_eq(&slow),
            "{} seed {seed:#x}: fast-forward changed a sparse scripted report",
            spec.name()
        );
        prop_assert_eq!(fast.delivered_packets as usize, msgs.len());
    }

    // Random replication counts R ∈ {2..8}: every lane of a lockstep
    // fleet must equal its scalar run bit for bit, at near-idle loads
    // where the fleet takes joint fast-forward jumps almost every
    // round. The test profile keeps debug assertions on, so `jump_to`'s
    // "fast-forward jumped past the lane's own event horizon" tripwire
    // doubles as the multi-lane never-jump-past property: a fleet
    // horizon above any live lane's own next-event key would abort the
    // run, not merely diverge — extending PR 3's single-lane tripwire
    // to the minimum-over-lanes horizon rule.
    #[test]
    fn lockstep_lanes_equal_scalar_at_random_low_loads(
        which in 0usize..4,
        seed in 0u64..u64::MAX,
        replications in 2usize..=8,
        load_bp in 1u32..80,
        threads in 1usize..4,
    ) {
        let g = Geometry::new(4, 3);
        let spec = lineup_spec(which);
        let net = Arc::new(spec.build(g));
        let load = f64::from(load_bp) / 5_000.0;
        let mut wspec = WorkloadSpec::global_uniform(load);
        wspec.sizes = MessageSizeDist::Fixed(16);
        let wl = Workload::compile(g, &wspec).unwrap();
        let cfg = EngineConfig {
            vcs: spec.vcs(),
            warmup: 200,
            measure: 1_500,
            seed: 0,
            ..EngineConfig::default()
        };
        let compiled = CompiledNet::new(Arc::clone(&net), cfg).unwrap();
        let seeds: Vec<u64> = (0..replications as u64)
            .map(|r| seed ^ r.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut ls = LockstepState::new();
        let fleet = compiled.run_poisson_lockstep(&wl, &seeds, threads, &mut ls);
        prop_assert_eq!(fleet.len(), replications);
        with_pooled_state(|st| {
            for (lane, &s) in fleet.iter().zip(&seeds) {
                let scalar = compiled.run_poisson(&wl, s, st).unwrap();
                let lane = lane.as_ref().expect("lockstep lane failed");
                prop_assert!(
                    lane.bitwise_eq(&scalar),
                    "{} R={replications} threads={threads} load {load} lane seed {s:#x}: \
                     lockstep lane diverged from its scalar run",
                    spec.name()
                );
            }
            Ok(())
        })?;
    }

    // Random sparse scripts through the fleet: the script cursor is the
    // jump target, gaps of thousands of cycles force repeated joint
    // jumps, and the early drain break must land every lane on exactly
    // its scalar cycle count.
    #[test]
    fn lockstep_on_random_sparse_scripts(
        which in 0usize..4,
        seed in 0u64..u64::MAX,
        replications in 2usize..=8,
        raw in proptest::collection::vec((0u64..5_000, 0u32..64, 0u32..64, 1u32..40), 1..8),
    ) {
        let g = Geometry::new(4, 3);
        let spec = lineup_spec(which);
        let net = Arc::new(spec.build(g));
        let msgs: Vec<ScriptedMsg> = raw
            .into_iter()
            .map(|(time, src, dst, len)| ScriptedMsg {
                time,
                src,
                dst: if dst == src { (dst + 1) % 64 } else { dst },
                len,
            })
            .collect();
        let cfg = EngineConfig {
            vcs: spec.vcs(),
            warmup: 0,
            measure: 1_000_000,
            seed: 0,
            ..EngineConfig::default()
        };
        let script = Script::compile(g, &msgs).unwrap();
        let compiled = CompiledNet::new(Arc::clone(&net), cfg).unwrap();
        let seeds: Vec<u64> = (0..replications as u64)
            .map(|r| seed ^ r.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .collect();
        let mut ls = LockstepState::new();
        let fleet = compiled.run_script_lockstep(&script, &seeds, 2, &mut ls);
        with_pooled_state(|st| {
            for (lane, &s) in fleet.iter().zip(&seeds) {
                let scalar = compiled.run_script(&script, s, st).unwrap();
                let lane = lane.as_ref().expect("lockstep lane failed");
                prop_assert!(
                    lane.bitwise_eq(&scalar),
                    "{} R={replications} lane seed {s:#x}: lockstep script lane diverged",
                    spec.name()
                );
                prop_assert_eq!(lane.delivered_packets as usize, msgs.len());
            }
            Ok(())
        })?;
    }

    // Random routes: walking a (src, dst) route with `RouteLogic`, the
    // precomputed table must offer the identical candidate slice at
    // every hop — on all four networks.
    #[test]
    fn route_table_matches_logic_along_random_routes(
        which in 0usize..4,
        src in 0u32..64,
        dst_raw in 0u32..64,
    ) {
        let g = Geometry::new(4, 3);
        let spec = lineup_spec(which);
        let net = spec.build(g);
        let dst = if dst_raw == src { (dst_raw + 1) % 64 } else { dst_raw };
        let logic = RouteLogic::for_kind(net.kind);
        let table = RouteTable::build(&net).unwrap();
        // Breadth-first over every channel the route may visit.
        let mut frontier = vec![net.inject(src)];
        let mut seen = vec![false; net.num_channels()];
        seen[net.inject(src) as usize] = true;
        let mut expect = Vec::new();
        let mut hops = 0usize;
        while let Some(at) = frontier.pop() {
            logic.candidates(&net, src, dst, at, &mut expect);
            prop_assert_eq!(
                table.candidates(at, dst),
                &expect[..],
                "{}: channel {} → {}",
                spec.name(),
                at,
                dst
            );
            hops += 1;
            for &c in &expect {
                if !seen[c as usize] {
                    seen[c as usize] = true;
                    frontier.push(c);
                }
            }
        }
        prop_assert!(hops > 1, "route must traverse at least one switch");
    }

    // Random (network, load, seed): a compiled network whose cell cap
    // suppressed the route table — forcing the per-hop `RouteLogic`
    // router — produces bit-identical reports to the default table mode.
    // This pins the extreme-scale fallback path: 16k-terminal runs route
    // exactly like a table-backed run would.
    #[test]
    fn logic_fallback_equals_table_mode(
        which in 0usize..4,
        load_pct in 5u32..65,
        seed in 0u64..u64::MAX,
    ) {
        let g = Geometry::new(4, 3);
        let spec = lineup_spec(which);
        let net = Arc::new(spec.build(g));
        let load = f64::from(load_pct) / 100.0;
        let mut wspec = WorkloadSpec::global_uniform(load);
        wspec.sizes = MessageSizeDist::Fixed(16);
        let wl = Workload::compile(g, &wspec).unwrap();
        let cfg = EngineConfig {
            vcs: spec.vcs(),
            warmup: 300,
            measure: 1_500,
            ..EngineConfig::default()
        };
        let tiny_cap = EngineConfig { route_table_max_cells: 1, ..cfg.clone() };
        let tabled = CompiledNet::new(Arc::clone(&net), cfg).unwrap();
        let logic = CompiledNet::new(Arc::clone(&net), tiny_cap).unwrap();
        prop_assert!(tabled.routes().is_some());
        prop_assert!(logic.routes().is_none(), "cap of 1 cell must suppress the table");
        let (a, b) = with_pooled_state(|st| {
            let a = tabled.run_poisson(&wl, seed, st).unwrap();
            let b = logic.run_poisson(&wl, seed, st).unwrap();
            (a, b)
        });
        prop_assert!(
            a.bitwise_eq(&b),
            "{} load {load} seed {seed:#x}: logic fallback diverged from the table",
            spec.name()
        );
    }

    // The parallel table build slots transparently into compilation:
    // a multi-threaded `table_build_threads` yields a compiled network
    // whose runs are bit-identical to the serial default.
    #[test]
    fn threaded_table_build_is_invisible(
        which in 0usize..4,
        seed in 0u64..u64::MAX,
        threads in 2u32..5,
    ) {
        let g = Geometry::new(4, 3);
        let spec = lineup_spec(which);
        let net = Arc::new(spec.build(g));
        let mut wspec = WorkloadSpec::global_uniform(0.2);
        wspec.sizes = MessageSizeDist::Fixed(16);
        let wl = Workload::compile(g, &wspec).unwrap();
        let cfg = EngineConfig {
            vcs: spec.vcs(),
            warmup: 300,
            measure: 1_000,
            ..EngineConfig::default()
        };
        let par_cfg = EngineConfig { table_build_threads: threads, ..cfg.clone() };
        let serial = CompiledNet::new(Arc::clone(&net), cfg).unwrap();
        let par = CompiledNet::new(Arc::clone(&net), par_cfg).unwrap();
        prop_assert_eq!(serial.routes().unwrap(), par.routes().unwrap());
        let (a, b) = with_pooled_state(|st| {
            let a = serial.run_poisson(&wl, seed, st).unwrap();
            let b = par.run_poisson(&wl, seed, st).unwrap();
            (a, b)
        });
        prop_assert!(a.bitwise_eq(&b), "{} seed {seed:#x}", spec.name());
    }
}
