//! Qualitative reproduction of the paper's §5 claims, as assertions.
//!
//! These use shorter measurement windows than the `figures` harness, so
//! they check *orderings and shapes*, not absolute numbers. Every claim
//! cites the paper passage it encodes.

use minnet::traffic::{Clustering, TrafficPattern};
use minnet::{Experiment, NetworkSpec};
use minnet_sim::SimReport;
use minnet_topology::{Geometry, UnidirKind};

fn run(mut exp: Experiment, load: f64) -> SimReport {
    exp.sim.warmup = 8_000;
    exp.sim.measure = 40_000;
    exp.run(load).expect("experiment runs")
}

fn msd_clusters(g: &Geometry) -> Clustering {
    Clustering::cubes_from_patterns(g, &["0XX", "1XX", "2XX", "3XX"]).unwrap()
}

fn lsd_clusters(g: &Geometry) -> Clustering {
    Clustering::cubes_from_patterns(g, &["XX0", "XX1", "XX2", "XX3"]).unwrap()
}

/// Fig. 16a: "For the global uniform traffic, there is no difference
/// between their performance as expected because the whole system is one
/// partition."
#[test]
fn fig16a_cube_equals_butterfly_globally() {
    let cube = run(
        Experiment::paper_default(NetworkSpec::Tmin(UnidirKind::Cube)),
        0.4,
    );
    let butterfly = run(
        Experiment::paper_default(NetworkSpec::Tmin(UnidirKind::Butterfly)),
        0.4,
    );
    let rel = (cube.mean_latency_cycles - butterfly.mean_latency_cycles).abs()
        / cube.mean_latency_cycles;
    assert!(rel < 0.15, "cube vs butterfly differ by {rel:.2} under global uniform");
}

/// Fig. 16b: "the communication interference between four clusters in the
/// butterfly TMIN degrades the system performance … the channel-reduced
/// clustering provides the worst performance."
#[test]
fn fig16b_cluster16_orderings() {
    let g = Geometry::new(4, 3);
    let mut cube = Experiment::paper_default(NetworkSpec::Tmin(UnidirKind::Cube));
    cube.clustering = msd_clusters(&g);
    let mut reduced = Experiment::paper_default(NetworkSpec::Tmin(UnidirKind::Butterfly));
    reduced.clustering = msd_clusters(&g);

    // At a load the balanced cube network handles comfortably, the
    // channel-reduced butterfly (4 channels for 16 nodes) is saturated.
    let rc = run(cube, 0.4);
    let rr = run(reduced, 0.4);
    assert!(
        rc.mean_latency_cycles < rr.mean_latency_cycles,
        "cube {} vs reduced butterfly {}",
        rc.mean_latency_cycles,
        rr.mean_latency_cycles
    );
    assert!(rc.accepted_flits_per_node_cycle > rr.accepted_flits_per_node_cycle);
}

/// Fig. 17a: "In this case, the channel-shared partitioning of the
/// butterfly TMIN provides the best performance" (ratios 4:1:1:1).
#[test]
fn fig17a_channel_shared_wins_under_skew() {
    let g = Geometry::new(4, 3);
    let rates = Some(vec![4.0, 1.0, 1.0, 1.0]);
    let mut cube = Experiment::paper_default(NetworkSpec::Tmin(UnidirKind::Cube));
    cube.clustering = msd_clusters(&g);
    cube.rates = rates.clone();
    let mut shared = Experiment::paper_default(NetworkSpec::Tmin(UnidirKind::Butterfly));
    shared.clustering = lsd_clusters(&g);
    shared.rates = rates;

    // The hot cluster runs at 16/7 ≈ 2.3x nominal; the cube's 16 balanced
    // channels are its bottleneck while the shared butterfly spreads the
    // hot cluster over all 64 channels. Nominal load 0.25 puts the hot
    // cluster right at the cube's knee, where the gap is decisive on both
    // metrics (verified stable across seeds with 80k-cycle windows).
    cube.sim.warmup = 15_000;
    cube.sim.measure = 80_000;
    shared.sim.warmup = 15_000;
    shared.sim.measure = 80_000;
    let rc = cube.run(0.25).unwrap();
    let rs = shared.run(0.25).unwrap();
    assert!(
        rs.mean_latency_cycles < rc.mean_latency_cycles,
        "shared butterfly {} vs balanced cube {}",
        rs.mean_latency_cycles,
        rc.mean_latency_cycles
    );
    assert!(
        rs.accepted_flits_per_node_cycle > rc.accepted_flits_per_node_cycle,
        "shared butterfly accepted {} vs balanced cube {}",
        rs.accepted_flits_per_node_cycle,
        rc.accepted_flits_per_node_cycle
    );
}

/// Fig. 17b: "The ratio 1:0:0:0 provides a smaller maximum network
/// throughput because only one cluster of 16 nodes is able to generate
/// network traffic" — accepted throughput caps at ~25% of the 64-node
/// bound.
#[test]
fn fig17b_single_active_cluster_caps_at_quarter() {
    let g = Geometry::new(4, 3);
    let mut exp = Experiment::paper_default(NetworkSpec::Tmin(UnidirKind::Cube));
    exp.clustering = msd_clusters(&g);
    exp.rates = Some(vec![1.0, 0.0, 0.0, 0.0]);
    // Deep overload for the active cluster. Accepted throughput counts
    // flits of window-generated packets only; under overload a warmup
    // backlog would delay those far into the window and attenuate the
    // measured rate, so measure from cycle 0 — the startup transient is
    // a few hundred cycles.
    exp.sim.warmup = 0;
    exp.sim.measure = 60_000;
    let r = exp.run(0.9).expect("experiment runs");
    assert!(
        r.accepted_flits_per_node_cycle <= 0.25 + 1e-9,
        "accepted {} exceeds the 25% structural cap",
        r.accepted_flits_per_node_cycle
    );
    assert!(r.accepted_flits_per_node_cycle > 0.10, "active cluster barely moves");
}

/// Fig. 18a: "The TMIN performs the worst … The DMIN performs consistently
/// the best … the performance of the VMIN is always slightly better than
/// that of the BMIN."
#[test]
fn fig18a_four_network_ordering() {
    let load = 0.5;
    let tmin = run(Experiment::paper_default(NetworkSpec::tmin()), load);
    let dmin = run(Experiment::paper_default(NetworkSpec::dmin(2)), load);
    let vmin = run(Experiment::paper_default(NetworkSpec::vmin(2)), load);
    let bmin = run(Experiment::paper_default(NetworkSpec::Bmin), load);
    assert!(dmin.mean_latency_cycles < vmin.mean_latency_cycles, "DMIN best");
    assert!(dmin.mean_latency_cycles < bmin.mean_latency_cycles);
    assert!(tmin.mean_latency_cycles > vmin.mean_latency_cycles, "TMIN worst");
    assert!(tmin.mean_latency_cycles > bmin.mean_latency_cycles);
    assert!(
        vmin.mean_latency_cycles < bmin.mean_latency_cycles,
        "VMIN ({}) should edge out BMIN ({})",
        vmin.mean_latency_cycles,
        bmin.mean_latency_cycles
    );
    // Throughput ordering at the same offered load.
    assert!(dmin.accepted_flits_per_node_cycle >= tmin.accepted_flits_per_node_cycle);
}

/// Fig. 18b: the ordering survives cluster-16 partitioning.
#[test]
fn fig18b_ordering_survives_clustering() {
    let g = Geometry::new(4, 3);
    let load = 0.5;
    let mut results = Vec::new();
    for spec in NetworkSpec::paper_lineup() {
        let mut e = Experiment::paper_default(spec);
        e.clustering = msd_clusters(&g);
        results.push((spec.name(), run(e, load)));
    }
    let lat = |i: usize| results[i].1.mean_latency_cycles;
    // lineup order: TMIN, DMIN, VMIN, BMIN.
    assert!(lat(1) < lat(0), "DMIN beats TMIN");
    assert!(lat(1) < lat(3), "DMIN beats BMIN");
    assert!(lat(0) > lat(2), "TMIN worse than VMIN");
}

/// Fig. 19: hot spots congest every network; the DMIN's 5% degradation is
/// modest while 10% cuts throughput sharply (78% → 70% → ~45% in the
/// paper).
#[test]
fn fig19_hot_spot_degradation() {
    let overload = 0.9; // probe the saturated regime
    let dmin = |extra: f64| {
        let mut e = Experiment::paper_default(NetworkSpec::dmin(2));
        if extra > 0.0 {
            e.pattern = TrafficPattern::HotSpot { extra };
        }
        run(e, overload).accepted_flits_per_node_cycle
    };
    let uni = dmin(0.0);
    let h5 = dmin(0.05);
    let h10 = dmin(0.10);
    assert!(h5 < uni, "5% hot spot must cost throughput ({h5} vs {uni})");
    assert!(h10 < h5, "10% must cost more ({h10} vs {h5})");
    // The 10% hot spot roughly halves the uniform saturation throughput.
    assert!(h10 < 0.75 * uni, "10% hot spot only reached {h10} vs {uni}");
    // TMIN remains the worst network under hot spots.
    let mut t = Experiment::paper_default(NetworkSpec::tmin());
    t.pattern = TrafficPattern::HotSpot { extra: 0.10 };
    let tmin10 = run(t, overload).accepted_flits_per_node_cycle;
    assert!(tmin10 <= h10 + 0.02, "TMIN ({tmin10}) must not beat DMIN ({h10})");
}

/// Fig. 20: under permutation traffic "Both the TMIN and the VMIN have a
/// poor performance … The VMIN has worse performance than that of the
/// TMIN … Both the DMIN and the BMIN demonstrate a better performance."
#[test]
fn fig20_permutation_traffic() {
    let load = 0.6;
    let with = |spec: NetworkSpec, pattern: TrafficPattern| {
        let mut e = Experiment::paper_default(spec);
        e.pattern = pattern;
        run(e, load)
    };
    for pattern in [TrafficPattern::SHUFFLE, TrafficPattern::butterfly(2)] {
        let tmin = with(NetworkSpec::tmin(), pattern);
        let vmin = with(NetworkSpec::vmin(2), pattern);
        let dmin = with(NetworkSpec::dmin(2), pattern);
        let bmin = with(NetworkSpec::Bmin, pattern);
        // DMIN and BMIN clearly beat TMIN and VMIN on accepted throughput.
        for good in [&dmin, &bmin] {
            for bad in [&tmin, &vmin] {
                assert!(
                    good.accepted_flits_per_node_cycle > bad.accepted_flits_per_node_cycle,
                    "{pattern:?}: good {} vs bad {}",
                    good.accepted_flits_per_node_cycle,
                    bad.accepted_flits_per_node_cycle
                );
            }
        }
        // The paper's counterintuitive VMIN < TMIN claim: fair flit-level
        // multiplexing gives all contending packets similarly long delays.
        assert!(
            vmin.mean_latency_cycles > tmin.mean_latency_cycles,
            "{pattern:?}: VMIN ({}) should be slower than TMIN ({})",
            vmin.mean_latency_cycles,
            tmin.mean_latency_cycles
        );
    }
}

/// §6 future work: more virtual channels help the VMIN ("The performance
/// of the VMIN is expected to be better if there are additional virtual
/// channels"). Going from one lane (a TMIN) to two is a large step; two
/// to four is a small one (the full `ext_vc4` figure quantifies it), so
/// we assert the strong step strictly and the weak one with slack.
#[test]
fn ext_more_vcs_help_vmin() {
    let load = 0.5;
    let longer = |spec| {
        let mut e = Experiment::paper_default(spec);
        e.sim.warmup = 15_000;
        e.sim.measure = 80_000;
        e.run(load).unwrap()
    };
    let v1 = longer(NetworkSpec::vmin(1));
    let v2 = longer(NetworkSpec::vmin(2));
    let v4 = longer(NetworkSpec::vmin(4));
    // 1 → 2 VCs is a large, unambiguous improvement on both metrics.
    assert!(
        v2.mean_latency_cycles < v1.mean_latency_cycles,
        "vcs=2 ({}) should clearly beat vcs=1 ({})",
        v2.mean_latency_cycles,
        v1.mean_latency_cycles
    );
    assert!(v2.accepted_flits_per_node_cycle > v1.accepted_flits_per_node_cycle);
    // 2 → 4 VCs is a marginal gain (see the ext_vc4 figure); assert it at
    // least does not cost throughput.
    assert!(
        v4.accepted_flits_per_node_cycle > v2.accepted_flits_per_node_cycle - 0.02,
        "vcs=4 accepted {} fell below vcs=2 {}",
        v4.accepted_flits_per_node_cycle,
        v2.accepted_flits_per_node_cycle
    );
}

/// §5.2 text: "The cube interconnection also showed performance
/// improvement over the butterfly interconnection" for cluster-32.
#[test]
fn ext_cluster32_cube_beats_butterfly() {
    let g = Geometry::new(4, 3);
    let c32 = Clustering::BitCubes(vec![
        minnet_topology::BitCube::parse(&g, "0XXXXX").unwrap(),
        minnet_topology::BitCube::parse(&g, "1XXXXX").unwrap(),
    ]);
    let mut cube = Experiment::paper_default(NetworkSpec::Tmin(UnidirKind::Cube));
    cube.clustering = c32.clone();
    let mut butterfly = Experiment::paper_default(NetworkSpec::Tmin(UnidirKind::Butterfly));
    butterfly.clustering = c32;
    let rc = run(cube, 0.45);
    let rb = run(butterfly, 0.45);
    assert!(
        rc.mean_latency_cycles < rb.mean_latency_cycles,
        "cube {} vs butterfly {}",
        rc.mean_latency_cycles,
        rb.mean_latency_cycles
    );
}
