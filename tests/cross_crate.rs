//! Cross-crate consistency: the static theory (topology / routing /
//! partition) must agree with what the dynamic engine actually does.

use minnet::partition::UnidirPartitionAnalysis;
use minnet::routing::{dependency_graph, find_cycle, DependencyRule};
use minnet::traffic::Clustering;
use minnet::{Experiment, NetworkSpec};
use minnet_topology::{Endpoint, Geometry, NetworkGraph, UnidirKind};

/// Map `(level, wire position)` to the channel ids realising it (one per
/// lane) in a unidirectional MIN graph.
fn position_channels(net: &NetworkGraph, level: u32, pos: u32) -> Vec<u32> {
    let k = net.geometry.k();
    let n = net.geometry.n();
    (0..net.num_channels() as u32)
        .filter(|&c| {
            let ch = net.channel(c);
            if ch.level as u32 != level {
                return false;
            }
            if level < n {
                // Input-side position: destination switch and port.
                match ch.dst {
                    Endpoint::Switch { sw, port, .. } => {
                        let idx = net.switch(sw).index;
                        idx * k + u32::from(port) == pos
                    }
                    _ => false,
                }
            } else {
                // Final level: output-side position at stage n-1.
                match ch.src {
                    Endpoint::Switch { sw, port, .. } => {
                        let idx = net.switch(sw).index;
                        idx * k + u32::from(port) == pos
                    }
                    _ => false,
                }
            }
        })
        .collect()
}

/// The partition analysis *predicts* which channels a single active
/// cluster may touch; the engine's measured utilization must be zero
/// everywhere else and positive inside.
#[test]
fn partition_prediction_matches_measured_utilization() {
    let g = Geometry::new(4, 3);
    for kind in [UnidirKind::Cube, UnidirKind::Butterfly] {
        let spec = NetworkSpec::Tmin(kind);
        let net = spec.build(g);

        // Only cluster 0 (nodes 0..16) generates traffic.
        let patterns = ["0XX", "1XX", "2XX", "3XX"];
        let clusters: Vec<Vec<u32>> = patterns
            .iter()
            .map(|p| {
                minnet_topology::CubeSpec::parse(&g, p)
                    .unwrap()
                    .members(&g)
                    .iter()
                    .map(|a| a.0)
                    .collect()
            })
            .collect();
        let analysis = UnidirPartitionAnalysis::analyze(g, kind, &clusters);

        let mut exp = Experiment::paper_default(spec);
        exp.clustering = Clustering::cubes_from_patterns(&g, &patterns).unwrap();
        exp.rates = Some(vec![1.0, 0.0, 0.0, 0.0]);
        exp.sim.warmup = 5_000;
        exp.sim.measure = 30_000;
        exp.sim.collect_channel_util = true;
        let report = exp.run(0.3).unwrap();
        let util = report.channel_utilization.unwrap();

        // Sanity: the static analysis agrees with what we re-derive below.
        assert!(analysis.channels_used(0, 0) > 0);

        // Predicted channel set of cluster 0, by walking its unique paths.
        let mut predicted = vec![false; net.num_channels()];
        use minnet_topology::unidir::unique_path_positions;
        for &s in &clusters[0] {
            for &d in &clusters[0] {
                if s == d {
                    continue;
                }
                for (level, pos) in unique_path_positions(
                    &g,
                    kind,
                    minnet_topology::NodeAddr(s),
                    minnet_topology::NodeAddr(d),
                ) {
                    for c in position_channels(&net, level, pos) {
                        predicted[c as usize] = true;
                    }
                }
            }
        }

        let mut inside_busy = 0usize;
        for (c, &u) in util.iter().enumerate() {
            if !predicted[c] {
                assert_eq!(
                    u, 0.0,
                    "{kind:?}: channel {c} outside the predicted set is busy ({u})"
                );
            } else if u > 0.0 {
                inside_busy += 1;
            }
        }
        assert!(
            inside_busy > 16,
            "{kind:?}: too few predicted channels saw traffic ({inside_busy})"
        );
    }
}

/// Every network we simulate has an acyclic channel-dependency graph —
/// the static guarantee behind the engine's freedom from deadlock.
#[test]
fn all_simulated_networks_are_deadlock_free() {
    let g = Geometry::new(4, 3);
    for spec in NetworkSpec::paper_lineup() {
        let net = spec.build(g);
        let adj = dependency_graph(&net, DependencyRule::Paper);
        assert!(find_cycle(&adj).is_none(), "{}", spec.name());
    }
}

/// The engine's reverse-topological transmit order is a valid linearisation
/// of the dependency graph: a channel never depends on one processed
/// earlier... i.e. for every dependency edge c1 → c2, c2 comes first.
#[test]
fn transmit_order_linearises_dependencies() {
    let g = Geometry::new(4, 3);
    for spec in NetworkSpec::paper_lineup() {
        let net = spec.build(g);
        let order = net.transmit_order();
        let mut rank = vec![0usize; net.num_channels()];
        for (i, &c) in order.iter().enumerate() {
            rank[c as usize] = i;
        }
        let adj = dependency_graph(&net, DependencyRule::Paper);
        for (c1, succs) in adj.iter().enumerate() {
            for &c2 in succs {
                assert!(
                    rank[c2 as usize] < rank[c1],
                    "{}: dependency {c1} → {c2} not respected",
                    spec.name()
                );
            }
        }
    }
}

/// Everything scales past the paper's 64-node design point: build and
/// briefly drive a 256-node (k=4, n=4) instance of every network.
#[test]
fn scales_to_256_nodes() {
    use minnet::traffic::MessageSizeDist;
    let g = Geometry::new(4, 4);
    for spec in NetworkSpec::paper_lineup() {
        let net = spec.build(g);
        net.validate().unwrap();
        assert_eq!(net.geometry.nodes(), 256);
        let mut exp = Experiment::paper_default(spec);
        exp.geometry = g;
        exp.sizes = MessageSizeDist::Fixed(32);
        exp.sim.warmup = 500;
        exp.sim.measure = 3_000;
        let r = exp.run(0.2).unwrap();
        assert!(r.delivered_packets > 0, "{}", spec.name());
    }
}

/// Simulated unloaded latency equals the analytic path length plus
/// serialization for every network type (ties `minnet-routing`'s formulas
/// to `minnet-sim`'s behaviour).
#[test]
fn analytic_path_lengths_match_simulated_latency() {
    use minnet::routing::shortest_path_length;
    use minnet_sim::{run_scripted, EngineConfig, ScriptedMsg};
    let g = Geometry::new(4, 3);
    let cfg = EngineConfig {
        warmup: 0,
        measure: 100_000,
        ..EngineConfig::default()
    };
    let len = 40u32;
    for spec in NetworkSpec::paper_lineup() {
        let net = spec.build(g);
        for (s, d) in [(0u32, 63u32), (5, 6), (17, 40)] {
            let r = run_scripted(&net, &[ScriptedMsg { time: 0, src: s, dst: d, len }], &cfg)
                .unwrap();
            let done = r.deliveries.unwrap()[0].done_time;
            let path = shortest_path_length(
                &g,
                net.kind.is_bidirectional(),
                minnet_topology::NodeAddr(s),
                minnet_topology::NodeAddr(d),
            )
            .unwrap();
            assert_eq!(
                done,
                path as u64 + len as u64 - 1,
                "{} {s}→{d}",
                spec.name()
            );
        }
    }
}
