//! Differential tests: the occupancy-scaled engine against the frozen
//! scan-everything reference (`minnet_sim::reference`, feature
//! `reference-engine`), and the compiled pipeline against both.
//!
//! The optimized engine's contract is **bit-identical** [`SimReport`]s —
//! every integer equal, every float equal down to its bit pattern
//! ([`SimReport::bitwise_eq`]) — for the same seed across all four
//! network kinds and all three traffic modes. Its active-set
//! bookkeeping (arrival/release heaps, injectable-source bitset,
//! occupied-channel sweep) must be pure scheduling: any reordered RNG
//! draw, dropped request, or skipped ready channel shows up here as a
//! diverging report.
//!
//! The compile-once path ([`CompiledNet`] + reused [`EngineState`],
//! routing through the precomputed [`minnet_routing::RouteTable`]) is
//! held to the same standard: every differential below runs it third,
//! *reusing one engine state across all networks and seeds*, so a table
//! cell that disagrees with [`minnet_routing::RouteLogic`] or a reset
//! path that leaks state across runs diverges here.

use minnet::NetworkSpec;
use minnet_sim::{
    reference, run_chained, run_scripted, run_simulation, Chain, ChainedMsg, CompiledNet,
    EngineConfig, EngineState, Script, ScriptedMsg, SimReport,
};
use minnet_topology::Geometry;
use minnet_traffic::{Workload, WorkloadSpec};
use std::sync::Arc;

const SEEDS: [u64; 3] = [0x5EED, 0xD1FF_E7EA, 0xC0FF_EE00_0042];

fn cfg_for(spec: &NetworkSpec, seed: u64) -> EngineConfig {
    EngineConfig {
        vcs: spec.vcs(),
        warmup: 2_000,
        measure: 8_000,
        seed,
        collect_channel_util: true,
        ..EngineConfig::default()
    }
}

fn assert_identical(kind: &str, opt: &SimReport, refr: &SimReport) {
    assert!(
        opt.bitwise_eq(refr),
        "{kind}: optimized and reference reports diverge:\n  optimized: {opt:?}\n  reference: {refr:?}"
    );
}

/// Poisson traffic: moderate load, all four §5.3 networks, three seeds,
/// three engines (optimized, reference, compiled-with-reused-state).
#[test]
fn poisson_reports_are_bit_identical() {
    let g = Geometry::new(4, 3);
    let mut st = EngineState::new(); // one state across ALL runs below
    for spec in NetworkSpec::paper_lineup() {
        let net = Arc::new(spec.build(g));
        let wl = Workload::compile(g, &WorkloadSpec::global_uniform(0.35)).unwrap();
        let compiled = CompiledNet::new(Arc::clone(&net), cfg_for(&spec, 0)).unwrap();
        for seed in SEEDS {
            let cfg = cfg_for(&spec, seed);
            let opt = run_simulation(&net, &wl, &cfg).unwrap();
            let refr = reference::run_simulation(&net, &wl, &cfg).unwrap();
            assert_identical(&format!("{} seed {seed:#x}", spec.name()), &opt, &refr);
            let fast = compiled.run_poisson(&wl, seed, &mut st).unwrap();
            assert_identical(&format!("{} seed {seed:#x} compiled", spec.name()), &fast, &refr);
            assert!(opt.delivered_packets > 0, "{}: nothing simulated", spec.name());
        }
    }
}

/// Deterministic scripts, including event traces and delivery logs.
fn script(g: Geometry) -> Vec<ScriptedMsg> {
    let n = g.nodes();
    let mut msgs = Vec::new();
    // A staggered all-to-one-neighbour pattern plus some cross traffic;
    // enough overlap in time to exercise blocking and VC multiplexing.
    for i in 0..n {
        msgs.push(ScriptedMsg {
            time: u64::from(i % 7) * 3,
            src: i,
            dst: (i + 1) % n,
            len: 4 + (i % 5),
        });
        if i % 3 == 0 {
            msgs.push(ScriptedMsg {
                time: 10 + u64::from(i),
                src: i,
                dst: (i + n / 2) % n,
                len: 16,
            });
        }
    }
    msgs
}

#[test]
fn scripted_reports_are_bit_identical() {
    let g = Geometry::new(4, 3);
    let mut st = EngineState::new();
    for spec in NetworkSpec::paper_lineup() {
        let net = Arc::new(spec.build(g));
        let mut base = cfg_for(&spec, 0);
        base.warmup = 0;
        base.measure = 1_000_000;
        base.collect_trace = true;
        let compiled = CompiledNet::new(Arc::clone(&net), base.clone()).unwrap();
        let once = Script::compile(g, &script(g)).unwrap(); // validated once
        for seed in SEEDS {
            let cfg = EngineConfig { seed, ..base.clone() };
            let opt = run_scripted(&net, &script(g), &cfg).unwrap();
            let refr = reference::run_scripted(&net, &script(g), &cfg).unwrap();
            assert_identical(&format!("{} seed {seed:#x}", spec.name()), &opt, &refr);
            let fast = compiled.run_script(&once, seed, &mut st).unwrap();
            assert_identical(&format!("{} seed {seed:#x} compiled", spec.name()), &fast, &refr);
            assert_eq!(
                opt.delivered_packets as usize,
                script(g).len(),
                "{}: script must drain",
                spec.name()
            );
        }
    }
}

/// Chained (dependent) traffic: a binomial multicast tree from node 0
/// plus independent root messages, with relay overhead.
fn chain(g: Geometry) -> Vec<ChainedMsg> {
    let n = g.nodes();
    let mut msgs: Vec<ChainedMsg> = Vec::new();
    // Binomial tree: each delivered message forwards to two more nodes.
    msgs.push(ChainedMsg { src: 0, dst: 1, len: 8, earliest: 0, after: None });
    msgs.push(ChainedMsg { src: 0, dst: n / 2, len: 8, earliest: 0, after: None });
    let mut i = 0;
    while i < msgs.len() && msgs.len() < 16 {
        let parent = &msgs[i];
        let relay = parent.dst;
        let next = (relay * 2 + 3) % n;
        if next != relay {
            msgs.push(ChainedMsg {
                src: relay,
                dst: next,
                len: 6,
                earliest: 5,
                after: Some(i),
            });
        }
        i += 1;
    }
    // Background roots staggered in time.
    for i in (3..n).step_by(7) {
        msgs.push(ChainedMsg {
            src: i,
            dst: (i + 5) % n,
            len: 12,
            earliest: u64::from(i),
            after: None,
        });
    }
    msgs
}

#[test]
fn chained_reports_are_bit_identical() {
    let g = Geometry::new(4, 3);
    let mut st = EngineState::new();
    for spec in NetworkSpec::paper_lineup() {
        let net = Arc::new(spec.build(g));
        let mut base = cfg_for(&spec, 0);
        base.warmup = 0;
        base.measure = 1_000_000;
        base.collect_trace = true;
        let compiled = CompiledNet::new(Arc::clone(&net), base.clone()).unwrap();
        let once = Chain::compile(g, &chain(g), 20).unwrap();
        for seed in SEEDS {
            let cfg = EngineConfig { seed, ..base.clone() };
            let opt = run_chained(&net, &chain(g), 20, &cfg).unwrap();
            let refr = reference::run_chained(&net, &chain(g), 20, &cfg).unwrap();
            assert_identical(&format!("{} seed {seed:#x}", spec.name()), &opt, &refr);
            let fast = compiled.run_chain(&once, seed, &mut st).unwrap();
            assert_identical(&format!("{} seed {seed:#x} compiled", spec.name()), &fast, &refr);
            assert_eq!(
                opt.delivered_packets as usize,
                chain(g).len(),
                "{}: chain must complete",
                spec.name()
            );
        }
    }
}

/// The ablation transmit order must agree too — the occupied-channel set
/// is indexed by order position, whatever the order is.
#[test]
fn build_order_transmit_is_bit_identical() {
    let g = Geometry::new(4, 3);
    let spec = NetworkSpec::tmin();
    let net = spec.build(g);
    let wl = Workload::compile(g, &WorkloadSpec::global_uniform(0.4)).unwrap();
    let mut cfg = cfg_for(&spec, SEEDS[0]);
    cfg.transmit_order = minnet_sim::TransmitOrder::BuildOrder;
    let opt = run_simulation(&net, &wl, &cfg).unwrap();
    let refr = reference::run_simulation(&net, &wl, &cfg).unwrap();
    assert_identical("TMIN build-order", &opt, &refr);
}

/// The word-parallel kernels are pure acceleration: with the toggle
/// forced **on** and forced **off** in the config (independent of the
/// `MINNET_WORD_KERNELS` environment default), Poisson and scripted
/// reports must be bit-identical across all four networks and three
/// seeds — the off path is the scalar oracle the kernels are audited
/// against, so any divergence in request order, RNG draw count, or
/// accumulator sequencing lands here. Saturating load (0.55) keeps the
/// occupancy masks dense so the batched transmit paths actually run.
#[test]
fn word_kernel_toggle_is_bit_identical() {
    let g = Geometry::new(4, 3);
    let mut st = EngineState::new();
    for spec in NetworkSpec::paper_lineup() {
        let net = Arc::new(spec.build(g));
        let wl = Workload::compile(g, &WorkloadSpec::global_uniform(0.55)).unwrap();
        let compiled = CompiledNet::new(Arc::clone(&net), cfg_for(&spec, 0)).unwrap();
        let on = compiled.with_word_kernels(true);
        let off = compiled.with_word_kernels(false);
        for seed in SEEDS {
            let a = on.run_poisson(&wl, seed, &mut st).unwrap();
            let b = off.run_poisson(&wl, seed, &mut st).unwrap();
            assert_identical(
                &format!("{} seed {seed:#x} kernels on/off", spec.name()),
                &a,
                &b,
            );
            assert!(a.delivered_packets > 0, "{}: nothing simulated", spec.name());
        }

        let mut base = cfg_for(&spec, 0);
        base.warmup = 0;
        base.measure = 1_000_000;
        base.collect_trace = true;
        let scripted = CompiledNet::new(Arc::clone(&net), base).unwrap();
        let once = Script::compile(g, &script(g)).unwrap();
        for seed in SEEDS {
            let a = scripted
                .with_word_kernels(true)
                .run_script(&once, seed, &mut st)
                .unwrap();
            let b = scripted
                .with_word_kernels(false)
                .run_script(&once, seed, &mut st)
                .unwrap();
            assert_identical(
                &format!("{} seed {seed:#x} scripted kernels on/off", spec.name()),
                &a,
                &b,
            );
        }
    }
}

/// The toggle must also be invisible under the build-order transmit
/// ablation, which exercises the kernels' re-read (non-patching)
/// fallback loops instead of the reverse-topological patch loops.
#[test]
fn word_kernel_toggle_is_bit_identical_in_build_order() {
    let g = Geometry::new(4, 3);
    let mut st = EngineState::new();
    for spec in NetworkSpec::paper_lineup() {
        let net = Arc::new(spec.build(g));
        let wl = Workload::compile(g, &WorkloadSpec::global_uniform(0.5)).unwrap();
        let mut cfg = cfg_for(&spec, 0);
        cfg.transmit_order = minnet_sim::TransmitOrder::BuildOrder;
        let compiled = CompiledNet::new(Arc::clone(&net), cfg).unwrap();
        for seed in SEEDS {
            let a = compiled
                .with_word_kernels(true)
                .run_poisson(&wl, seed, &mut st)
                .unwrap();
            let b = compiled
                .with_word_kernels(false)
                .run_poisson(&wl, seed, &mut st)
                .unwrap();
            assert_identical(
                &format!("{} seed {seed:#x} build-order kernels on/off", spec.name()),
                &a,
                &b,
            );
        }
    }
}

/// Crossbar validation exercises the engine's release bookkeeping on a
/// different path; keep it equivalent as well.
#[test]
fn crossbar_validated_run_is_bit_identical() {
    let g = Geometry::new(4, 3);
    let spec = NetworkSpec::Bmin;
    let net = spec.build(g);
    let wl = Workload::compile(g, &WorkloadSpec::global_uniform(0.3)).unwrap();
    let mut cfg = cfg_for(&spec, SEEDS[1]);
    cfg.validate_crossbars = true;
    let opt = run_simulation(&net, &wl, &cfg).unwrap();
    let refr = reference::run_simulation(&net, &wl, &cfg).unwrap();
    assert_identical("BMIN crossbar-validated", &opt, &refr);
}

/// A parallel sweep must give byte-for-byte the same curve no matter how
/// many worker threads carve it up — each task owns a derived seed, and
/// workers reuse their own engine states. All four networks, 1 vs 8
/// threads, and the sweep must equal what per-point one-shot runs give.
#[test]
fn sweep_reports_are_thread_count_invariant() {
    use minnet::sweep::latency_throughput_curve;
    use minnet::Experiment;
    use minnet_traffic::MessageSizeDist;

    let loads = [0.05, 0.15, 0.25, 0.35, 0.45, 0.55, 0.65, 0.75];
    for spec in NetworkSpec::paper_lineup() {
        let mut exp = Experiment::paper_default(spec);
        exp.sizes = MessageSizeDist::Fixed(32);
        exp.sim.warmup = 500;
        exp.sim.measure = 4_000;
        let seq = latency_throughput_curve(&exp, &loads, 1).unwrap();
        let par = latency_throughput_curve(&exp, &loads, 8).unwrap();
        assert_eq!(seq.len(), par.len());
        for (a, b) in seq.iter().zip(&par) {
            assert_eq!(a.offered.to_bits(), b.offered.to_bits());
            assert!(
                a.report.bitwise_eq(&b.report),
                "{}: thread count changed the report at load {}",
                spec.name(),
                a.offered
            );
        }
    }
}

/// The replicated sweep parallelizes over the (point, replication) grid;
/// its aggregates must not depend on how workers claim that grid.
#[test]
fn replicated_sweep_is_thread_count_invariant() {
    use minnet::sweep::replicated_curve;
    use minnet::Experiment;
    use minnet_traffic::MessageSizeDist;

    let mut exp = Experiment::paper_default(NetworkSpec::vmin(2));
    exp.sizes = MessageSizeDist::Fixed(32);
    exp.sim.warmup = 500;
    exp.sim.measure = 4_000;
    let loads = [0.1, 0.3, 0.5];
    let seq = replicated_curve(&exp, &loads, 5, 1).unwrap();
    let par = replicated_curve(&exp, &loads, 5, 8).unwrap();
    for (a, b) in seq.iter().zip(&par) {
        assert_eq!(a.mean_latency_cycles.to_bits(), b.mean_latency_cycles.to_bits());
        assert_eq!(a.latency_ci95_cycles.to_bits(), b.latency_ci95_cycles.to_bits());
        assert_eq!(
            a.accepted_flits_per_node_cycle.to_bits(),
            b.accepted_flits_per_node_cycle.to_bits()
        );
        for (x, y) in a.replications.iter().zip(&b.replications) {
            assert!(x.bitwise_eq(y), "replication diverged at load {}", a.offered);
        }
    }
}

/// One engine state dragged across traffic *modes* (Poisson → scripted →
/// chained → Poisson) must behave exactly like fresh states: the reset
/// path owns every mode-specific structure (heaps, delivery logs,
/// traces).
#[test]
fn state_reuse_across_traffic_modes_is_bit_identical() {
    let g = Geometry::new(4, 3);
    let spec = NetworkSpec::dmin(2);
    let net = Arc::new(spec.build(g));
    let wl = Workload::compile(g, &WorkloadSpec::global_uniform(0.3)).unwrap();
    let mut poisson_cfg = cfg_for(&spec, SEEDS[0]);
    poisson_cfg.collect_trace = true;
    let mut det_cfg = poisson_cfg.clone();
    det_cfg.warmup = 0;
    det_cfg.measure = 1_000_000;

    let compiled_p = CompiledNet::new(Arc::clone(&net), poisson_cfg.clone()).unwrap();
    let compiled_d = CompiledNet::new(Arc::clone(&net), det_cfg.clone()).unwrap();
    let once_script = Script::compile(g, &script(g)).unwrap();
    let once_chain = Chain::compile(g, &chain(g), 20).unwrap();

    // Fresh-state baselines.
    let want_p = run_simulation(&net, &wl, &poisson_cfg).unwrap();
    let want_s = run_scripted(&net, &script(g), &det_cfg).unwrap();
    let want_c = run_chained(&net, &chain(g), 20, &det_cfg).unwrap();

    // The same state cycles through all modes, twice.
    let mut st = EngineState::new();
    for round in 0..2 {
        let p = compiled_p.run_poisson(&wl, SEEDS[0], &mut st).unwrap();
        assert_identical(&format!("poisson round {round}"), &p, &want_p);
        let s = compiled_d.run_script(&once_script, SEEDS[0], &mut st).unwrap();
        assert_identical(&format!("scripted round {round}"), &s, &want_s);
        let c = compiled_d.run_chain(&once_chain, SEEDS[0], &mut st).unwrap();
        assert_identical(&format!("chained round {round}"), &c, &want_c);
    }
}

/// A sparse script: one 32-flit worm every 700 cycles, so the network
/// drains to full quiescence between injections — maximal fast-forward
/// territory.
fn sparse_script(g: Geometry) -> Vec<ScriptedMsg> {
    let n = g.nodes();
    (0..10u32)
        .map(|i| ScriptedMsg {
            time: u64::from(i) * 700,
            src: (i * 11) % n,
            dst: (i * 11 + n / 2 + 1) % n,
            len: 32,
        })
        .collect()
}

/// Event-horizon fast-forward on vs off must be **bit-identical** across
/// all four networks, all three traffic modes, and both a
/// quiescence-heavy and a drain-heavy shape. The frozen reference engine
/// (which has no fast-forward at all) anchors every comparison, so the
/// jump can't hide a divergence both paths share.
///
/// Quiescence-heavy shapes: a near-idle Poisson load whose first arrival
/// typically lands beyond the warmup boundary (exercising the bulk
/// zero-sample replay across it), a sparse script with ~700-cycle gaps,
/// and a chain whose ~300-cycle relay overhead leaves the network empty
/// between generations. Drain-heavy shapes: the dense script/chain that
/// finish far before the configured horizon — the jump must not disturb
/// the drain break's cycle count — and a moderate Poisson load where
/// quiescence (almost) never occurs and the gate must be a no-op.
#[test]
fn fast_forward_reports_are_bit_identical() {
    let g = Geometry::new(4, 3);
    let mut st = EngineState::new();
    for spec in NetworkSpec::paper_lineup() {
        let net = Arc::new(spec.build(g));

        // Poisson: near-idle and moderate.
        for load in [0.002, 0.3] {
            let wl = Workload::compile(g, &WorkloadSpec::global_uniform(load)).unwrap();
            for seed in SEEDS {
                let mut on = cfg_for(&spec, seed);
                on.warmup = 300;
                on.measure = 2_500;
                let off = EngineConfig {
                    fast_forward: false,
                    ..on.clone()
                };
                assert!(on.fast_forward, "fast-forward must default on");
                let fast = run_simulation(&net, &wl, &on).unwrap();
                let slow = run_simulation(&net, &wl, &off).unwrap();
                let refr = reference::run_simulation(&net, &wl, &off).unwrap();
                let what = format!("{} poisson load {load} seed {seed:#x}", spec.name());
                assert_identical(&format!("{what} (on vs off)"), &fast, &slow);
                assert_identical(&format!("{what} (on vs reference)"), &fast, &refr);
                // The compiled path takes the same jumps through a reused state.
                let compiled = CompiledNet::new(Arc::clone(&net), on.clone()).unwrap();
                let comp = compiled.run_poisson(&wl, seed, &mut st).unwrap();
                assert_identical(&format!("{what} (compiled)"), &comp, &refr);
            }
        }

        // Scripted: sparse (gap-heavy) and dense (drain-heavy).
        for msgs in [sparse_script(g), script(g)] {
            let mut on = cfg_for(&spec, SEEDS[0]);
            on.warmup = 0;
            on.measure = 1_000_000;
            on.collect_trace = true;
            let off = EngineConfig {
                fast_forward: false,
                ..on.clone()
            };
            let fast = run_scripted(&net, &msgs, &on).unwrap();
            let slow = run_scripted(&net, &msgs, &off).unwrap();
            let refr = reference::run_scripted(&net, &msgs, &off).unwrap();
            let what = format!("{} scripted x{}", spec.name(), msgs.len());
            assert_identical(&format!("{what} (on vs off)"), &fast, &slow);
            assert_identical(&format!("{what} (on vs reference)"), &fast, &refr);
            assert_eq!(fast.delivered_packets as usize, msgs.len(), "{what}: must drain");
        }

        // Chained: relay overhead 300 empties the network between
        // generations; overhead 0 keeps it busy until the early drain.
        for overhead in [300u64, 0] {
            let mut on = cfg_for(&spec, SEEDS[1]);
            on.warmup = 0;
            on.measure = 1_000_000;
            on.collect_trace = true;
            let off = EngineConfig {
                fast_forward: false,
                ..on.clone()
            };
            let fast = run_chained(&net, &chain(g), overhead, &on).unwrap();
            let slow = run_chained(&net, &chain(g), overhead, &off).unwrap();
            let refr = reference::run_chained(&net, &chain(g), overhead, &off).unwrap();
            let what = format!("{} chained overhead {overhead}", spec.name());
            assert_identical(&format!("{what} (on vs off)"), &fast, &slow);
            assert_identical(&format!("{what} (on vs reference)"), &fast, &refr);
        }
    }
}

/// Scalar ≡ lockstep, Poisson: every lane of a lockstep fleet must
/// reproduce its scalar run bit for bit — all four networks, a
/// quiescence-heavy and a moderate load, and several thread chunkings
/// (1 = one interleaved fleet; more = contiguous lane blocks on scoped
/// threads). The scalar baselines reuse one engine state, the fleets
/// one lane pool, so state reuse is pinned on both sides.
#[test]
fn lockstep_poisson_lanes_match_scalar_bitwise() {
    let g = Geometry::new(4, 3);
    let mut st = EngineState::new();
    let mut ls = minnet_sim::LockstepState::new();
    let seeds: Vec<u64> = (0..5u64).map(|r| 0xA5A5 + r * 7919).collect();
    for spec in NetworkSpec::paper_lineup() {
        let net = Arc::new(spec.build(g));
        let mut cfg = cfg_for(&spec, 0);
        cfg.warmup = 500;
        cfg.measure = 3_000;
        let compiled = CompiledNet::new(Arc::clone(&net), cfg).unwrap();
        for load in [0.002, 0.3] {
            let wl = Workload::compile(g, &WorkloadSpec::global_uniform(load)).unwrap();
            let scalar: Vec<SimReport> = seeds
                .iter()
                .map(|&s| compiled.run_poisson(&wl, s, &mut st).unwrap())
                .collect();
            for threads in [1usize, 2, 5] {
                let fleet = compiled.run_poisson_lockstep(&wl, &seeds, threads, &mut ls);
                for ((lane, want), &seed) in fleet.iter().zip(&scalar).zip(&seeds) {
                    let lane = lane.as_ref().expect("lockstep lane failed");
                    assert_identical(
                        &format!(
                            "{} load {load} seed {seed:#x} threads {threads} (lockstep)",
                            spec.name()
                        ),
                        lane,
                        want,
                    );
                }
            }
        }
    }
}

/// Scalar ≡ lockstep, scripted: both the dense (drain-heavy) and the
/// sparse (joint-fast-forward-heavy) script shapes, all four networks.
/// Event traces ride along, so the comparison pins per-cycle event
/// streams, not just the aggregate report.
#[test]
fn lockstep_script_lanes_match_scalar_bitwise() {
    let g = Geometry::new(4, 3);
    let mut st = EngineState::new();
    let mut ls = minnet_sim::LockstepState::new();
    let seeds: Vec<u64> = (0..4u64).map(|r| 0xBEE5 + r * 6151).collect();
    for spec in NetworkSpec::paper_lineup() {
        let net = Arc::new(spec.build(g));
        let mut cfg = cfg_for(&spec, 0);
        cfg.warmup = 0;
        cfg.measure = 1_000_000;
        cfg.collect_trace = true;
        let compiled = CompiledNet::new(Arc::clone(&net), cfg).unwrap();
        for msgs in [script(g), sparse_script(g)] {
            let once = Script::compile(g, &msgs).unwrap();
            let scalar: Vec<SimReport> = seeds
                .iter()
                .map(|&s| compiled.run_script(&once, s, &mut st).unwrap())
                .collect();
            for threads in [1usize, 3] {
                let fleet = compiled.run_script_lockstep(&once, &seeds, threads, &mut ls);
                for ((lane, want), &seed) in fleet.iter().zip(&scalar).zip(&seeds) {
                    let lane = lane.as_ref().expect("lockstep lane failed");
                    assert_identical(
                        &format!(
                            "{} script x{} seed {seed:#x} threads {threads} (lockstep)",
                            spec.name(),
                            msgs.len()
                        ),
                        lane,
                        want,
                    );
                    assert_eq!(lane.delivered_packets as usize, msgs.len());
                }
            }
        }
    }
}

/// Regression test for the measurement-accounting fixes: a short scripted
/// run that drains long before the configured window must normalize its
/// rates by the cycles actually measured, and count only measured
/// packets' flits.
#[test]
fn early_drain_normalizes_by_elapsed_cycles() {
    let g = Geometry::new(4, 3);
    let spec = NetworkSpec::tmin();
    let net = spec.build(g);
    let msgs = [
        ScriptedMsg { time: 0, src: 0, dst: 9, len: 10 },
        ScriptedMsg { time: 2, src: 5, dst: 20, len: 10 },
        ScriptedMsg { time: 4, src: 33, dst: 2, len: 10 },
    ];
    let mut cfg = EngineConfig {
        warmup: 0,
        measure: 1_000_000, // vastly larger than the drain time
        seed: 7,
        ..EngineConfig::default()
    };
    let r = run_scripted(&net, &msgs, &cfg).unwrap();
    assert_eq!(r.delivered_packets, 3);
    assert!(
        r.cycles < 200,
        "three short worms must drain quickly, took {} cycles",
        r.cycles
    );
    assert_eq!(r.measured_cycles, r.cycles);
    // 3 messages × 10 flits over the *elapsed* cycles — dividing by the
    // configured window would report a rate ~10⁴× too small.
    let expect = 30.0 / (64.0 * r.measured_cycles as f64);
    assert!(
        (r.accepted_flits_per_node_cycle - expect).abs() < 1e-12,
        "accepted {} vs expected {expect}",
        r.accepted_flits_per_node_cycle
    );
    assert!((r.offered_flits_per_node_cycle - expect).abs() < 1e-12);

    // Warmup asymmetry: a packet generated during warmup contributes
    // neither to delivered_packets nor to delivered_flits, even though
    // its flits land inside the window.
    cfg.warmup = 3; // messages at t=0 and t=2 are warmup traffic
    cfg.measure = 1_000_000;
    let r = run_scripted(&net, &msgs, &cfg).unwrap();
    assert_eq!(r.delivered_packets, 1, "only the t=4 message is measured");
    let expect = 10.0 / (64.0 * r.measured_cycles as f64);
    assert!(
        (r.accepted_flits_per_node_cycle - expect).abs() < 1e-12,
        "warmup packets' flits must be excluded: accepted {} vs {expect}",
        r.accepted_flits_per_node_cycle
    );
}
