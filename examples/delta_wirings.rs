//! Beyond the paper's two main wirings: the §6 "additional work" claims
//! that the Omega network partitions like the cube MIN and the baseline
//! network like the butterfly. This example checks the static
//! partitionability of all four Delta wirings, then locates each one's
//! saturation point under cluster-16 traffic by bisection.
//!
//! ```text
//! cargo run --release --example delta_wirings
//! ```

use minnet::partition::UnidirPartitionAnalysis;
use minnet::topology::{CubeSpec, Geometry, UnidirKind};
use minnet::traffic::Clustering;
use minnet::{find_saturation, Experiment, NetworkSpec};

fn main() -> Result<(), String> {
    let g = Geometry::new(4, 3);
    let patterns = ["0XX", "1XX", "2XX", "3XX"];
    let clusters: Vec<Vec<u32>> = patterns
        .iter()
        .map(|p| {
            CubeSpec::parse(&g, p)
                .expect("valid pattern")
                .members(&g)
                .iter()
                .map(|a| a.0)
                .collect()
        })
        .collect();

    println!("Static partitionability of the 64-node Delta wirings (clusters 0XX..3XX):\n");
    println!(
        "{:<12} {:>16} {:>12}  channels/level for cluster 0XX",
        "wiring", "contention-free", "balanced"
    );
    let wirings = [
        UnidirKind::Cube,
        UnidirKind::Omega,
        UnidirKind::Butterfly,
        UnidirKind::Baseline,
    ];
    for kind in wirings {
        let a = UnidirPartitionAnalysis::analyze(g, kind, &clusters);
        let counts: Vec<usize> = (0..=g.n()).map(|l| a.channels_used(0, l)).collect();
        println!(
            "{:<12} {:>16} {:>12}  {:?}",
            format!("{kind:?}"),
            if a.is_contention_free() { "yes" } else { "NO" },
            if a.is_channel_balanced(0) { "yes" } else { "NO" },
            counts
        );
    }

    println!("\nSimulated saturation (bisection, cluster-16 uniform traffic):\n");
    for kind in wirings {
        let mut exp = Experiment::paper_default(NetworkSpec::Tmin(kind));
        exp.clustering = Clustering::cubes_from_patterns(&g, &patterns)?;
        exp.sim.warmup = 10_000;
        exp.sim.measure = 50_000;
        match find_saturation(&exp, 0.05, 1.0, 5)? {
            Some(p) => println!(
                "  TMIN({kind:?}): sustainable up to offered {:>4.1}% (accepted {:>4.1}%, latency {:>7.1} us)",
                p.offered * 100.0,
                p.report.throughput_percent(),
                p.report.mean_latency_us()
            ),
            None => println!("  TMIN({kind:?}): saturated even at 5% offered load"),
        }
    }
    println!(
        "\nexpectation (§6): omega tracks the cube; baseline tracks the butterfly's\n\
         channel-reduced behaviour and saturates far earlier."
    );
    Ok(())
}
