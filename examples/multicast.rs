//! Software multicast on wormhole MINs (§6 / ref [32]): compare three
//! unicast-based multicast schedules — sequential, binomial, and
//! address-ordered binomial — broadcasting from node 0 to all 63 other
//! nodes on the DMIN and the BMIN.
//!
//! ```text
//! cargo run --release --example multicast
//! ```

use minnet::mcast::{binomial, binomial_by_address, run_multicast, sequential};
use minnet::sim::{EngineConfig, CYCLE_US};
use minnet::{topology::Geometry, NetworkSpec};

fn main() -> Result<(), String> {
    let g = Geometry::new(4, 3);
    let len = 128u32;
    let overhead = 20; // 1 µs of software latency at each relay
    let dsts: Vec<u32> = (1..g.nodes()).collect();
    let mut scattered = dsts.clone();
    scattered.sort_by_key(|&d| (d % 4, d / 4)); // spread across subtrees

    let cfg = EngineConfig {
        warmup: 0,
        measure: 5_000_000,
        ..EngineConfig::default()
    };

    println!(
        "Broadcast 0 → 63 nodes, {len}-flit message, {:.1} µs relay overhead\n",
        overhead as f64 * CYCLE_US
    );
    println!(
        "{:<18} {:>14} {:>12} {:>12} {:>14}",
        "network", "schedule", "steps", "depth", "completion(us)"
    );
    for spec in [NetworkSpec::tmin(), NetworkSpec::dmin(2), NetworkSpec::Bmin] {
        let net = spec.build(g);
        let schedules = [
            ("sequential", sequential(0, &dsts, len)),
            ("binomial", binomial(0, &scattered, len)),
            ("binomial+addr", binomial_by_address(0, &dsts, len)),
        ];
        for (name, s) in schedules {
            let out = run_multicast(&net, &s, overhead, &cfg)?;
            println!(
                "{:<18} {:>14} {:>12} {:>12} {:>14.1}",
                spec.name(),
                name,
                s.message_count(),
                s.depth(),
                out.completion as f64 * CYCLE_US
            );
        }
        println!();
    }
    println!(
        "takeaways: recursive halving turns 63 serialized sends (~400 us) into\n\
         ~6 pipelined rounds (~44 us) — the depth × (latency + overhead) bound.\n\
         On an idle network each round is a near-permutation and rarely\n\
         conflicts, so the recipient order barely matters here; it starts to\n\
         matter when the multicast competes with background traffic (the\n\
         address order keeps late rounds inside fat-tree subtrees)."
    );
    Ok(())
}
