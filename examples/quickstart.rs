//! Quickstart: simulate the paper's 64-node dilated MIN under uniform
//! traffic and print the headline numbers.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use minnet::{Experiment, NetworkSpec};

fn main() -> Result<(), String> {
    // The paper's setting: 64 nodes built from 4×4 switches (3 stages of
    // 16 switches), wormhole switching, 20 flits/µs channels, messages
    // uniform in [8, 1024] flits, Poisson arrivals.
    let mut exp = Experiment::paper_default(NetworkSpec::dmin(2));
    exp.sim.warmup = 20_000;
    exp.sim.measure = 80_000;

    println!("network : {}", exp.network.name());
    println!(
        "geometry: {} nodes of {}x{} switches, {} stages",
        exp.geometry.nodes(),
        exp.geometry.k(),
        exp.geometry.k(),
        exp.geometry.n()
    );

    for load in [0.2, 0.5, 0.8] {
        let r = exp.run(load)?;
        println!(
            "load {:>3.0}% -> accepted {:>5.1}%  latency {:>8.1} us (p95 {:>8.1})  max queue {:>4}  {}",
            load * 100.0,
            r.throughput_percent(),
            r.mean_latency_us(),
            r.p95_latency_cycles as f64 * minnet::sim::CYCLE_US,
            r.max_queue,
            if r.sustainable { "sustainable" } else { "SATURATED" },
        );
    }
    Ok(())
}
