//! Hot-spot degradation study (§5.3.2, Fig. 19): how much of each
//! network's throughput survives when one node receives 5% / 10% extra
//! traffic.
//!
//! ```text
//! cargo run --release --example hotspot_study
//! ```

use minnet::traffic::TrafficPattern;
use minnet::{latency_throughput_curve, saturation_load, Experiment, NetworkSpec};

fn max_sustainable(spec: NetworkSpec, pattern: TrafficPattern, threads: usize) -> f64 {
    let mut exp = Experiment::paper_default(spec);
    exp.pattern = pattern;
    exp.sim.warmup = 15_000;
    exp.sim.measure = 60_000;
    let loads: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let points = latency_throughput_curve(&exp, &loads, threads).expect("sweep runs");
    saturation_load(&points)
        .map(|p| p.report.throughput_percent())
        .unwrap_or(0.0)
}

fn main() {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Maximum sustainable throughput (% of one-port bound), 64 nodes\n");
    println!(
        "{:<18} {:>9} {:>9} {:>9}",
        "network", "uniform", "hot 5%", "hot 10%"
    );
    for spec in NetworkSpec::paper_lineup() {
        let uni = max_sustainable(spec, TrafficPattern::Uniform, threads);
        let h5 = max_sustainable(spec, TrafficPattern::HotSpot { extra: 0.05 }, threads);
        let h10 = max_sustainable(spec, TrafficPattern::HotSpot { extra: 0.10 }, threads);
        println!(
            "{:<18} {:>8.1}% {:>8.1}% {:>8.1}%",
            spec.name(),
            uni,
            h5,
            h10
        );
    }
    println!(
        "\npaper's observation: all four networks congest badly under hot spots.\n\
         With the paper's formula the hot node's single ejection channel caps\n\
         sustained delivery at 25.0% (x=5%) and 14.9% (x=10%) of the one-port\n\
         bound (see minnet::model::hot_spot_cap) — every network is pinned\n\
         near that structural ceiling, so the once-large design differences\n\
         all but vanish (EXPERIMENTS.md discusses the paper's higher absolute\n\
         numbers)."
    );
}
