//! Network partitionability (§4): print the Fig. 14/15 channel
//! allocations, machine-check Theorems 2–4, and show the performance
//! consequence (a miniature Fig. 16b) by simulation.
//!
//! ```text
//! cargo run --release --example partitioning
//! ```

use minnet::partition::{BminPartitionAnalysis, UnidirPartitionAnalysis};
use minnet::topology::{build_bmin, BitCube, CubeSpec, Direction, Geometry, UnidirKind};
use minnet::traffic::Clustering;
use minnet::{Experiment, NetworkSpec};

fn bit_clusters(g: &Geometry, patterns: &[&str]) -> Vec<Vec<u32>> {
    patterns
        .iter()
        .map(|p| BitCube::parse(g, p).unwrap().members(g).iter().map(|a| a.0).collect())
        .collect()
}

fn digit_clusters(g: &Geometry, patterns: &[&str]) -> Vec<Vec<u32>> {
    patterns
        .iter()
        .map(|p| CubeSpec::parse(g, p).unwrap().members(g).iter().map(|a| a.0).collect())
        .collect()
}

fn print_unidir(title: &str, g: Geometry, kind: UnidirKind, patterns: &[&str], clusters: &[Vec<u32>]) {
    let a = UnidirPartitionAnalysis::analyze(g, kind, clusters);
    println!("{title}");
    for (ci, pat) in patterns.iter().enumerate() {
        let counts: Vec<usize> = (0..=g.n()).map(|l| a.channels_used(ci, l)).collect();
        println!(
            "  cluster {:<4} ({:>2} nodes): channels per level {:?}{}",
            pat,
            clusters[ci].len(),
            counts,
            if a.is_channel_balanced(ci) { "  [balanced]" } else { "  [NOT balanced]" }
        );
    }
    println!(
        "  contention-free: {}\n",
        if a.is_contention_free() { "yes" } else { "NO (channels shared between clusters)" }
    );
}

fn main() -> Result<(), String> {
    // ---- Fig. 14: the 8-node cube MIN, binary cube clusters ------------
    let g8 = Geometry::new(2, 3);
    let pats14 = ["0XX", "1X0", "1X1"];
    print_unidir(
        "Fig. 14 — cube MIN, clusters 0XX / 1X0 / 1X1 (Theorem 2):",
        g8,
        UnidirKind::Cube,
        &pats14,
        &bit_clusters(&g8, &pats14),
    );

    // ---- Fig. 15a: butterfly MIN, channel-reduced -----------------------
    let pats15a = ["0XX", "10X", "11X"];
    print_unidir(
        "Fig. 15a — butterfly MIN, channel-reduced clustering (Theorem 3):",
        g8,
        UnidirKind::Butterfly,
        &pats15a,
        &bit_clusters(&g8, &pats15a),
    );

    // ---- Fig. 15b: butterfly MIN, channel-shared ------------------------
    let pats15b = ["XX0", "XX1"];
    print_unidir(
        "Fig. 15b — butterfly MIN, channel-shared clustering:",
        g8,
        UnidirKind::Butterfly,
        &pats15b,
        &bit_clusters(&g8, &pats15b),
    );

    // ---- Theorem 4: BMIN base cubes -------------------------------------
    let g64 = Geometry::new(4, 3);
    let net = build_bmin(g64);
    let base_pats = ["0XX", "1XX", "2XX", "3XX"];
    let a = BminPartitionAnalysis::analyze(&net, &digit_clusters(&g64, &base_pats));
    println!("Theorem 4 — 64-node BMIN, base cubes 0XX..3XX:");
    for (ci, pat) in base_pats.iter().enumerate() {
        println!(
            "  cluster {pat}: levels used 0..={}, {} forward channels at level 0, balanced: {}",
            a.max_level(ci).unwrap(),
            a.channels_used(ci, 0, Direction::Forward),
            a.is_channel_balanced(ci)
        );
    }
    println!("  contention-free: {}\n", a.is_contention_free());

    // ---- The performance consequence (miniature Fig. 16b) ---------------
    println!("Simulated consequence at 50% offered load, cluster-16 uniform traffic:");
    let msd = Clustering::cubes_from_patterns(&g64, &base_pats)?;
    let lsd = Clustering::cubes_from_patterns(&g64, &["XX0", "XX1", "XX2", "XX3"])?;
    let configs = [
        ("cube TMIN, balanced clusters", NetworkSpec::Tmin(UnidirKind::Cube), msd.clone()),
        ("butterfly TMIN, reduced clusters", NetworkSpec::Tmin(UnidirKind::Butterfly), msd),
        ("butterfly TMIN, shared clusters", NetworkSpec::Tmin(UnidirKind::Butterfly), lsd),
    ];
    for (label, spec, clustering) in configs {
        let mut exp = Experiment::paper_default(spec);
        exp.clustering = clustering;
        exp.sim.warmup = 15_000;
        exp.sim.measure = 60_000;
        let r = exp.run(0.5)?;
        println!(
            "  {:<34} accepted {:>5.1}%  latency {:>8.1} us  {}",
            label,
            r.throughput_percent(),
            r.mean_latency_us(),
            if r.sustainable { "" } else { "(saturated)" }
        );
    }
    Ok(())
}
