//! The paper's headline comparison (§5.3, Fig. 18a): sweep all four
//! networks under global uniform traffic and report latency–throughput
//! curves plus the maximum sustainable throughput of each design.
//!
//! ```text
//! cargo run --release --example network_comparison
//! ```

use minnet::{curve_table, latency_throughput_curve, saturation_load, Experiment, NetworkSpec};

fn main() -> Result<(), String> {
    let loads: Vec<f64> = (1..=9).map(|i| i as f64 / 10.0).collect();
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    println!("Four switch-based wormhole networks, 64 nodes, global uniform traffic\n");
    let mut summary = Vec::new();
    for spec in NetworkSpec::paper_lineup() {
        let mut exp = Experiment::paper_default(spec);
        exp.sim.warmup = 15_000;
        exp.sim.measure = 60_000;
        let points = latency_throughput_curve(&exp, &loads, threads)?;
        print!("{}", curve_table(&spec.name(), &points));
        println!();
        let max = saturation_load(&points)
            .map(|p| p.report.throughput_percent())
            .unwrap_or(0.0);
        summary.push((spec.name(), max));
    }

    println!("maximum sustainable throughput (percent of one-port bound):");
    summary.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (name, max) in &summary {
        println!("  {:<18} {:>5.1}%", name, max);
    }
    println!(
        "\npaper's conclusion: the dilation-2 DMIN is the most cost-effective design;\n\
         expect DMIN > VMIN ≳ BMIN > TMIN here."
    );
    Ok(())
}
