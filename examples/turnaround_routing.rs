//! Anatomy of the bidirectional MIN (§3): walk the paper's Fig. 8
//! routing example, count shortest paths (Theorem 1), view the network as
//! a fat tree (Fig. 13), and verify deadlock freedom on the channel
//! dependency graph.
//!
//! ```text
//! cargo run --release --example turnaround_routing
//! ```

use minnet::routing::{
    dependency_graph, enumerate_paths, find_cycle, shortest_path_count, DependencyRule,
    RouteLogic,
};
use minnet::topology::fattree::FatTreeView;
use minnet::topology::{build_bmin, Geometry, NodeAddr};

fn main() {
    // ---- Fig. 8: S = 001 → D = 101 in the 8-node, 2×2-switch BMIN -------
    let g = Geometry::new(2, 3);
    let net = build_bmin(g);
    let s = g.parse_addr("001").unwrap();
    let d = g.parse_addr("101").unwrap();
    let t = g.first_difference(s, d).unwrap();
    println!("Fig. 8 — routing {s:?} → {d:?} (digit strings 001 → 101)");
    println!("  FirstDifference = {t}: ascend to stage G{t}, turn, descend");

    let paths = enumerate_paths(&net, RouteLogic::Turnaround, s.0, d.0);
    println!(
        "  turnaround paths: {} of length {} channels (Theorem 1: k^t = {})",
        paths.len(),
        paths[0].len(),
        shortest_path_count(&g, s, d).unwrap()
    );
    for (i, p) in paths.iter().enumerate() {
        let hops: Vec<String> = p
            .iter()
            .map(|&c| {
                let ch = net.channel(c);
                match (ch.dir, ch.dst.switch()) {
                    (minnet::topology::Direction::Forward, Some(sw)) => {
                        format!("up->G{}#{}", net.switch(sw).stage, net.switch(sw).index)
                    }
                    (minnet::topology::Direction::Backward, Some(sw)) => {
                        format!("down->G{}#{}", net.switch(sw).stage, net.switch(sw).index)
                    }
                    (_, None) => format!("eject->{}", ch.dst.node().unwrap()),
                }
            })
            .collect();
        println!("    path {}: {}", i + 1, hops.join("  "));
    }

    // ---- Theorem 1 at k = 4 ---------------------------------------------
    let g4 = Geometry::new(4, 3);
    let net4 = build_bmin(g4);
    println!("\nTheorem 1 on the 64-node, 4×4-switch BMIN:");
    for (src, dst) in [(0u32, 1u32), (0, 5), (0, 63)] {
        let t = g4.first_difference(NodeAddr(src), NodeAddr(dst)).unwrap();
        let n = enumerate_paths(&net4, RouteLogic::Turnaround, src, dst).len();
        println!("  {src:>2} → {dst:<2}: t = {t}, shortest paths = {n} (= 4^{t})");
    }

    // ---- Fig. 13: fat-tree view ------------------------------------------
    let ft = FatTreeView::new(g4);
    println!("\nFig. 13 — fat-tree view of the 64-node BMIN:");
    for level in 0..3 {
        let v = minnet::topology::fattree::FatVertex { level, high: 0 };
        println!(
            "  level {level}: {} vertices, {} switches each, {} leaves per subtree, {} parent links",
            ft.vertices_at(level),
            ft.switches_per_vertex(level),
            ft.leaves(v).len(),
            ft.parent_links(v)
        );
    }
    let lca = ft.lca(NodeAddr(3), NodeAddr(9)).unwrap();
    println!("  LCA(3, 9) sits at level {} (= FirstDifference)", lca.level);

    // ---- §3.2.1: deadlock freedom ----------------------------------------
    let adj = dependency_graph(&net4, DependencyRule::Paper);
    println!(
        "\nDeadlock analysis: channel dependency graph has {} vertices; cycle: {:?}",
        adj.len(),
        find_cycle(&adj).map(|c| c.len())
    );
    let bad = dependency_graph(&net4, DependencyRule::AllowReascend);
    println!(
        "With the forbidden r→r connection enabled, a cycle of length {} appears — \
         which is exactly why Fig. 2 outlaws it.",
        find_cycle(&bad).expect("cycle must exist").len()
    );
}
